package gateway

import (
	"testing"
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

func TestScanFilterShedsRepeatScanners(t *testing.T) {
	g, fb, k := newTestGateway(t, func(c *Config) { c.ScanFilter = 3 })
	// One loud scanner sweeps 100 addresses on one port.
	for i := 0; i < 100; i++ {
		g.HandleInbound(k.Now(), syn(ext(0), mon(i)))
	}
	k.Run()
	if got := len(fb.spawned); got != 3 {
		t.Errorf("spawned %d VMs, want 3 (filter threshold)", got)
	}
	if got := g.Stats().ScanFiltered; got != 97 {
		t.Errorf("ScanFiltered = %d, want 97", got)
	}
}

func TestScanFilterPerPortAndSource(t *testing.T) {
	g, fb, k := newTestGateway(t, func(c *Config) { c.ScanFilter = 2 })
	// Same source, two ports: separate budgets.
	for i := 0; i < 10; i++ {
		g.HandleInbound(k.Now(), netsim.TCPSyn(ext(0), mon(i), 1000, 445, 1))
		g.HandleInbound(k.Now(), netsim.TCPSyn(ext(0), mon(100+i), 1000, 80, 1))
	}
	// A different source gets its own budget.
	for i := 0; i < 10; i++ {
		g.HandleInbound(k.Now(), netsim.TCPSyn(ext(1), mon(200+i), 1000, 445, 1))
	}
	k.Run()
	if got := len(fb.spawned); got != 6 {
		t.Errorf("spawned %d VMs, want 6 (2 per (src,port))", got)
	}
}

func TestScanFilterNeverCutsBoundConversations(t *testing.T) {
	g, fb, k := newTestGateway(t, func(c *Config) { c.ScanFilter = 1 })
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.Run()
	// Source exhausted its budget, but follow-up packets to the bound
	// address still flow.
	for i := 0; i < 5; i++ {
		g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	}
	if got := len(fb.spawned[0].delivered); got != 6 {
		t.Errorf("delivered = %d, want 6", got)
	}
}

func TestScanFilterIgnoresInternalSources(t *testing.T) {
	g, fb, k := newTestGateway(t, func(c *Config) {
		c.ScanFilter = 1
		c.Policy = PolicyDropAll
	})
	// Internal source (a honeyfarm VM scanning inside the farm) must
	// never be filtered: every internal contact spawns a VM.
	for i := 0; i < 5; i++ {
		g.HandleInbound(k.Now(), syn(mon(200), mon(i)))
	}
	k.Run()
	if got := len(fb.spawned); got != 5 {
		t.Errorf("spawned %d, want 5 (internal sources unfiltered)", got)
	}
	if g.Stats().ScanFiltered != 0 {
		t.Errorf("ScanFiltered = %d", g.Stats().ScanFiltered)
	}
	_ = fb
}

func TestScanFilterDisabledByDefault(t *testing.T) {
	g, fb, k := newTestGateway(t, nil)
	for i := 0; i < 50; i++ {
		g.HandleInbound(k.Now(), syn(ext(0), mon(i)))
	}
	k.Run()
	if got := len(fb.spawned); got != 50 {
		t.Errorf("spawned %d, want 50 (no filter)", got)
	}
}

func TestPinDetectedSurvivesRecycling(t *testing.T) {
	g, fb, k := newTestGateway(t, func(c *Config) {
		c.IdleTimeout = 2 * time.Second
		c.PinDetected = true
		c.DetectThreshold = 3
		c.Policy = PolicyDropAll
	})
	// Two VMs: one goes rogue (detected), one stays clean.
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	g.HandleInbound(k.Now(), syn(ext(1), mon(1)))
	k.RunUntil(sim.Start.Add(time.Second))
	for i := 0; i < 5; i++ {
		g.HandleOutbound(k.Now(), syn(mon(0), netsim.MustParseAddr("99.0.0.1")+netsim.Addr(i)))
	}
	if !g.Binding(mon(0)).Detected() {
		t.Fatal("not detected")
	}
	k.RunUntil(sim.Start.Add(time.Minute))
	// Clean VM recycled; detected VM quarantined.
	if g.Binding(mon(1)) != nil {
		t.Error("clean idle binding survived")
	}
	if g.Binding(mon(0)) == nil {
		t.Error("detected binding was recycled despite PinDetected")
	}
	if fb.spawned[0].destroyed {
		t.Error("quarantined VM destroyed")
	}
	g.Close()
}

func TestPinDetectedOffRecyclesEverything(t *testing.T) {
	g, _, k := newTestGateway(t, func(c *Config) {
		c.IdleTimeout = 2 * time.Second
		c.DetectThreshold = 3
		c.Policy = PolicyDropAll
	})
	g.HandleInbound(k.Now(), syn(ext(0), mon(0)))
	k.RunUntil(sim.Start.Add(time.Second))
	for i := 0; i < 5; i++ {
		g.HandleOutbound(k.Now(), syn(mon(0), netsim.MustParseAddr("99.0.0.1")+netsim.Addr(i)))
	}
	k.RunUntil(sim.Start.Add(time.Minute))
	if g.Binding(mon(0)) != nil {
		t.Error("binding survived without PinDetected")
	}
	g.Close()
}
