package gateway

import (
	"potemkin/internal/sim"
)

// Outbound rate limiting is the containment middle ground the paper
// discusses: instead of dropping a class of traffic outright, cap how
// fast any one VM can emit it. A worm's propagation utility collapses
// at a few packets per second while an interactive session barely
// notices — so rate limits preserve fidelity that hard drops destroy,
// at a bounded worst-case leak rate.
//
// The limiter is a classic token bucket per binding, refilled in
// virtual time: capacity Burst tokens, refill Rate tokens/second.

// RateLimit configures per-binding outbound shaping. The zero value
// disables limiting.
type RateLimit struct {
	// Rate is sustained packets/second allowed per binding.
	Rate float64
	// Burst is the bucket depth (instantaneous burst allowance).
	// Zero with a nonzero Rate defaults to max(1, Rate/2).
	Burst float64
}

// Enabled reports whether the limit is active.
func (rl RateLimit) Enabled() bool { return rl.Rate > 0 }

// bucket is one binding's token state.
type bucket struct {
	tokens float64
	last   sim.Time
}

// take attempts to spend one token at virtual time now.
func (b *bucket) take(now sim.Time, rl RateLimit) bool {
	burst := rl.Burst
	if burst <= 0 {
		burst = rl.Rate / 2
		if burst < 1 {
			burst = 1
		}
	}
	elapsed := now.Sub(b.last)
	if elapsed > 0 {
		b.tokens += rl.Rate * elapsed.Seconds()
		b.last = now
	}
	if b.tokens > burst {
		b.tokens = burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// allowOutbound applies the configured rate limit to an
// about-to-be-externalized packet from binding b. Packets over the
// limit are counted and dropped.
func (g *Gateway) allowOutbound(now sim.Time, b *Binding) bool {
	if !g.Cfg.OutboundLimit.Enabled() || b == nil {
		return true
	}
	if b.rate == nil {
		burst := g.Cfg.OutboundLimit.Burst
		if burst <= 0 {
			burst = g.Cfg.OutboundLimit.Rate / 2
			if burst < 1 {
				burst = 1
			}
		}
		b.rate = &bucket{tokens: burst, last: now}
	}
	if b.rate.take(now, g.Cfg.OutboundLimit) {
		return true
	}
	g.stats.OutRateLimited++
	return false
}

// DefaultOutboundLimit is a worm-crippling but session-friendly cap.
func DefaultOutboundLimit() RateLimit {
	return RateLimit{Rate: 2, Burst: 10}
}
