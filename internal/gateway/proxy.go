package gateway

import (
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// Protocol proxying is the paper's containment option for traffic that
// neither reflection nor a resolver can fake well enough: forward it to
// a sacrificial, heavily-instrumented real host instead. The gateway
// NATs the VM's connection to the proxy host and rewrites the return
// path so the malware believes it reached its intended destination.
//
// Rules are per destination port. The NAT table maps an allocated
// gateway port to the original (VM, destination) pair; returns arrive
// addressed to ProxyAddr and are rewritten back.

// ProxyRule names a sacrificial host for one destination port.
type ProxyRule struct {
	// Host receives the proxied traffic.
	Host netsim.Addr
}

// natEntry records one proxied flow.
type natEntry struct {
	vmAddr  netsim.Addr
	vmPort  uint16
	origDst netsim.Addr
	dstPort uint16
}

// natBase is the first gateway port used for proxy NAT.
const natBase = 20000

// maxNATEntries bounds the table; beyond it, proxying degrades to the
// policy's default disposition.
const maxNATEntries = 8192

// tryProxy forwards a VM-originated packet to its port's sacrificial
// host, if a rule exists. Reports whether it consumed the packet.
func (g *Gateway) tryProxy(now sim.Time, pkt *netsim.Packet) (Disposition, bool) {
	if len(g.Cfg.ProxyRules) == 0 || g.Cfg.ProxyAddr == 0 || pkt.Proto != netsim.ProtoTCP && pkt.Proto != netsim.ProtoUDP {
		return DispDropped, false
	}
	rule, ok := g.Cfg.ProxyRules[pkt.DstPort]
	if !ok {
		return DispDropped, false
	}
	key := natEntry{vmAddr: pkt.Src, vmPort: pkt.SrcPort, origDst: pkt.Dst, dstPort: pkt.DstPort}
	gwPort, ok := g.natPorts[key]
	if !ok {
		if len(g.natPorts) >= maxNATEntries {
			g.stats.OutDropped++
			return DispDropped, true
		}
		gwPort = natBase + uint16(len(g.natPorts))
		g.natPorts[key] = gwPort
		g.nat[gwPort] = key
	}
	fwd := pkt.Clone()
	fwd.Src = g.Cfg.ProxyAddr
	fwd.SrcPort = gwPort
	fwd.Dst = rule.Host
	g.stats.OutProxied++
	g.met.proxied.Inc()
	g.met.outPermitted.Inc()
	g.emit(now, fwd)
	return DispProxied, true
}

// handleProxyReturn rewrites a sacrificial host's reply back to the VM,
// impersonating the malware's original destination. Reports whether the
// packet was a proxy return.
func (g *Gateway) handleProxyReturn(now sim.Time, pkt *netsim.Packet) bool {
	if g.Cfg.ProxyAddr == 0 || pkt.Dst != g.Cfg.ProxyAddr {
		return false
	}
	entry, ok := g.nat[pkt.DstPort]
	if !ok {
		g.stats.InboundOutside++
		return true // addressed to us but unknown flow: swallow
	}
	back := pkt.Clone()
	back.Src = entry.origDst // the address the malware thinks it reached
	back.SrcPort = entry.dstPort
	back.Dst = entry.vmAddr
	back.DstPort = entry.vmPort
	g.stats.ProxyReturns++
	g.met.proxyReturns.Inc()
	// Deliver directly to the bound VM; a recycled binding drops it.
	if b, ok := g.bindings[entry.vmAddr]; ok && b.State == BindingActive {
		b.LastActive = now
		g.stats.DeliveredToVM++
		g.met.delivered.Inc()
		g.capture(now, CapToVM, back)
		b.VM.Deliver(now, back)
	}
	return true
}
