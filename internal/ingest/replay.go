package ingest

import (
	"encoding/binary"
	"io"
	"net"
	"time"

	"potemkin/internal/gre"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

// WireSender encapsulates packets for one GRE-over-UDP tunnel to a
// listener: timestamp prefix (optional), GRE header with key and a
// monotonically increasing sequence number, then the raw inner IPv4
// bytes. The internal buffer is reused, so steady-state sends do not
// allocate.
type WireSender struct {
	conn *net.UDPConn
	// Key is the GRE tunnel key carried on every packet.
	Key uint32
	// Timestamped selects the 8-byte virtual-timestamp prefix framing.
	Timestamped bool

	seq uint32
	buf []byte
	pkt [frameBufSize]byte // marshal scratch for SendPacket

	// Sent and Bytes count datagrams and payload bytes written.
	Sent  uint64
	Bytes uint64
}

// DialWire connects a sender to a listener address.
func DialWire(to string, key uint32, timestamped bool) (*WireSender, error) {
	addr, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return nil, err
	}
	return &WireSender{conn: conn, Key: key, Timestamped: timestamped}, nil
}

// Close closes the socket.
func (s *WireSender) Close() error { return s.conn.Close() }

// SendRaw transmits one raw IPv4 packet stamped with virtual time ts.
func (s *WireSender) SendRaw(ts sim.Time, ip []byte) error {
	h := gre.Header{HasKey: true, HasSequence: true, Key: s.Key, Sequence: s.seq}
	s.seq++
	off := 0
	if s.Timestamped {
		off = tsPrefixLen
	}
	need := off + h.Len() + len(ip)
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	s.buf = s.buf[:need]
	if s.Timestamped {
		binary.BigEndian.PutUint64(s.buf, uint64(ts))
	}
	gre.EncapInto(&h, s.buf[off:], ip)
	n, err := s.conn.Write(s.buf)
	if err != nil {
		return err
	}
	s.Sent++
	s.Bytes += uint64(n)
	return nil
}

// SendPacket marshals and transmits one packet at virtual time ts.
func (s *WireSender) SendPacket(ts sim.Time, pkt *netsim.Packet) error {
	n := pkt.MarshalInto(s.pkt[:])
	return s.SendRaw(ts, s.pkt[:n])
}

// ReplayOptions controls wire-replay pacing.
type ReplayOptions struct {
	// Speedup divides recorded inter-packet gaps: 1 (or 0) replays at
	// recorded timing, 10 replays ten times faster. Ignored when
	// MaxRate is set.
	Speedup float64
	// MaxRate disables pacing entirely: packets leave back to back.
	MaxRate bool
	// FlowControl, when set, is called after every send with the
	// running count; it may block to keep the sender from overrunning
	// a receiver (the loopback determinism test gates on the bridge's
	// progress through it).
	FlowControl func(sent uint64)
}

// Replay paces a record source onto the wire. Each record is
// materialized as wire bytes and stamped with its trace time, so a
// timestamped listener reconstructs the recorded virtual timeline no
// matter how fast the wire replay runs. Returns the packet count and
// the last record's trace time.
func Replay(s *WireSender, src telescope.Source, opt ReplayOptions) (uint64, sim.Time, error) {
	speed := opt.Speedup
	if speed <= 0 {
		speed = 1
	}
	var (
		rec   telescope.Record
		n     uint64
		last  sim.Time
		first sim.Time
		begun bool
		start time.Time
	)
	for {
		err := src.Read(&rec)
		if err == io.EOF {
			return n, last, nil
		}
		if err != nil {
			return n, last, err
		}
		if !begun {
			begun = true
			first = rec.At
			start = time.Now()
		} else if !opt.MaxRate {
			// Sleep toward an absolute target so pacing error does
			// not accumulate across millions of packets.
			target := start.Add(time.Duration(float64(rec.At-first) / speed))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
		}
		if err := s.SendPacket(rec.At, rec.Packet()); err != nil {
			return n, last, err
		}
		n++
		last = rec.At
		if opt.FlowControl != nil {
			opt.FlowControl(n)
		}
	}
}
