package ingest

import (
	"bytes"
	"encoding/binary"
	"testing"

	"potemkin/internal/netsim"
	"potemkin/internal/telescope"
)

// FuzzPcapRead: pcap files come from outside the trust boundary (any
// capture a user imports). Hostile headers and record lengths must
// neither panic, nor hang, nor allocate absurd buffers — the oversize
// guard refuses length fields beyond maxPcapPacket before allocating.
func FuzzPcapRead(f *testing.F) {
	// Seed with a valid file...
	var valid bytes.Buffer
	pw, _ := NewPcapWriter(&valid)
	pkt := netsim.TCPSyn(netsim.MustParseAddr("1.2.3.4"), netsim.MustParseAddr("10.5.0.9"), 4444, 445, 7)
	pw.WritePacket(1e9, pkt.Marshal())
	pw.WritePacket(2e9, []byte{0x60, 1, 2, 3}) // one unconvertible frame
	pw.Flush()
	f.Add(valid.Bytes())
	// ...a truncated one, a big-endian µs header, and a length bomb.
	f.Add(valid.Bytes()[:pcapFileHeaderLen+pcapRecordHeaderLen-3])
	beHdr := make([]byte, pcapFileHeaderLen)
	binary.BigEndian.PutUint32(beHdr[0:], pcapMagicUS)
	binary.BigEndian.PutUint16(beHdr[4:], pcapVMajor)
	binary.BigEndian.PutUint32(beHdr[20:], LinkTypeEthernet)
	f.Add(beHdr)
	bomb := append(append([]byte{}, valid.Bytes()[:pcapFileHeaderLen]...), make([]byte, pcapRecordHeaderLen)...)
	binary.LittleEndian.PutUint32(bomb[pcapFileHeaderLen+8:], 1<<31)
	f.Add(bomb)

	f.Fuzz(func(t *testing.T, data []byte) {
		pr, err := NewPcapReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Bound the work: a file of n bytes can hold at most n records.
		for i := 0; i <= len(data); i++ {
			_, pktBytes, err := pr.Next()
			if err != nil {
				break
			}
			if len(pktBytes) > maxPcapPacket {
				t.Fatalf("reader admitted %d-byte record", len(pktBytes))
			}
		}

		// The record source must likewise survive anything.
		src, err := NewPcapSource(bytes.NewReader(data))
		if err != nil {
			return
		}
		var rec telescope.Record
		for i := 0; i <= len(data); i++ {
			if err := src.Read(&rec); err != nil {
				break
			}
		}
	})
}
