// Package ingest bridges real packets into the simulated honeyfarm: a
// GRE-over-UDP listener with bounded per-shard queues and drop
// accounting, a classic-pcap savefile codec (no cgo, no libpcap), a
// replayer that paces traces onto the wire, and a Bridge that maps wire
// arrivals onto deterministic simulated time.
//
// The paper's gateway is a packet-path element fed by telescope routers
// over GRE tunnels; this package is the reproduction's equivalent edge.
// Everything above the UDP socket is plain stdlib, so the decap fast
// path can be benchmarked honestly (zero allocations per packet in
// steady state) and fuzzed like the other wire codecs.
package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

// Classic pcap savefile constants. The writer emits the nanosecond
// variant (magic 0xa1b23c4d) in little-endian byte order so telescope
// trace times — simulated nanoseconds — survive a round trip exactly;
// the reader accepts both precisions in both byte orders.
const (
	pcapMagicUS = 0xa1b2c3d4 // microsecond timestamps
	pcapMagicNS = 0xa1b23c4d // nanosecond timestamps
	pcapVMajor  = 2
	pcapVMinor  = 4

	pcapFileHeaderLen   = 24
	pcapRecordHeaderLen = 16

	// LinkTypeRaw (LINKTYPE_RAW, 101) frames are bare IPv4/IPv6
	// packets — exactly what the netsim wire codec speaks. It is what
	// the writer emits.
	LinkTypeRaw = 101
	// LinkTypeEthernet (1) and LinkTypeIPv4 (228) and LinkTypeNull (0)
	// are accepted on read; see innerIPv4 for how the link header is
	// stripped.
	LinkTypeEthernet = 1
	LinkTypeIPv4     = 228
	LinkTypeNull     = 0

	// maxPcapPacket bounds a single record's captured length. Real
	// telescope packets are <= 64 KiB; anything above this in a file is
	// a corrupt or adversarial length field, refused rather than
	// allocated.
	maxPcapPacket = 1 << 16
)

// Pcap codec errors.
var (
	ErrPcapMagic    = errors.New("ingest: not a pcap file")
	ErrPcapVersion  = errors.New("ingest: unsupported pcap version")
	ErrPcapLink     = errors.New("ingest: unsupported pcap link type")
	ErrPcapOversize = errors.New("ingest: pcap record exceeds sane length")
)

// PcapWriter streams packets into a classic pcap savefile
// (little-endian, nanosecond precision, LINKTYPE_RAW).
type PcapWriter struct {
	w   *bufio.Writer
	n   uint64
	hdr [pcapRecordHeaderLen]byte
}

// NewPcapWriter writes the file header and returns a packet writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	bw := bufio.NewWriter(w)
	var hdr [pcapFileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagicNS)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVMinor)
	// thiszone (8:12) and sigfigs (12:16) are zero by convention.
	binary.LittleEndian.PutUint32(hdr[16:], maxPcapPacket) // snaplen
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRaw)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &PcapWriter{w: bw}, nil
}

// WritePacket appends one raw IPv4 packet captured at virtual time ts.
func (pw *PcapWriter) WritePacket(ts sim.Time, data []byte) error {
	if len(data) > maxPcapPacket {
		return ErrPcapOversize
	}
	b := pw.hdr[:]
	binary.LittleEndian.PutUint32(b[0:], uint32(uint64(ts)/1e9))
	binary.LittleEndian.PutUint32(b[4:], uint32(uint64(ts)%1e9))
	binary.LittleEndian.PutUint32(b[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(b[12:], uint32(len(data)))
	if _, err := pw.w.Write(b); err != nil {
		return err
	}
	_, err := pw.w.Write(data)
	pw.n++
	return err
}

// Count returns the number of packets written.
func (pw *PcapWriter) Count() uint64 { return pw.n }

// Flush flushes buffered packets to the underlying writer.
func (pw *PcapWriter) Flush() error { return pw.w.Flush() }

// PcapReader streams packets out of a classic pcap savefile. It accepts
// microsecond and nanosecond timestamp precision in either byte order,
// and the link types listed above.
type PcapReader struct {
	r     *bufio.Reader
	order binary.ByteOrder
	nanos bool
	link  uint32
	buf   []byte
	hdr   [pcapRecordHeaderLen]byte
	n     uint64
}

// NewPcapReader validates the file header of r and returns a reader.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	br := bufio.NewReader(r)
	var hdr [pcapFileHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("ingest: reading pcap header: %w", err)
	}
	pr := &PcapReader{r: br}
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case pcapMagicUS:
		pr.order = binary.LittleEndian
	case pcapMagicNS:
		pr.order, pr.nanos = binary.LittleEndian, true
	default:
		switch binary.BigEndian.Uint32(hdr[0:]) {
		case pcapMagicUS:
			pr.order = binary.BigEndian
		case pcapMagicNS:
			pr.order, pr.nanos = binary.BigEndian, true
		default:
			return nil, ErrPcapMagic
		}
	}
	if pr.order.Uint16(hdr[4:]) != pcapVMajor {
		return nil, ErrPcapVersion
	}
	pr.link = pr.order.Uint32(hdr[20:])
	switch pr.link {
	case LinkTypeRaw, LinkTypeEthernet, LinkTypeIPv4, LinkTypeNull:
	default:
		return nil, fmt.Errorf("%w %d", ErrPcapLink, pr.link)
	}
	return pr, nil
}

// LinkType returns the file's link-layer type.
func (pr *PcapReader) LinkType() uint32 { return pr.link }

// Count returns the number of records read so far.
func (pr *PcapReader) Count() uint64 { return pr.n }

// Next returns the next record's capture timestamp and its bytes, or
// io.EOF at end of file. The returned slice is reused by the following
// Next call. Captured bytes are returned as stored — possibly truncated
// relative to the original packet — with the link-layer header still
// attached; innerIPv4 strips it.
func (pr *PcapReader) Next() (sim.Time, []byte, error) {
	if _, err := io.ReadFull(pr.r, pr.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("ingest: truncated pcap record header: %w", err)
		}
		return 0, nil, err
	}
	sec := uint64(pr.order.Uint32(pr.hdr[0:]))
	sub := uint64(pr.order.Uint32(pr.hdr[4:]))
	incl := pr.order.Uint32(pr.hdr[8:])
	if incl > maxPcapPacket {
		return 0, nil, ErrPcapOversize
	}
	if cap(pr.buf) < int(incl) {
		pr.buf = make([]byte, incl)
	}
	pr.buf = pr.buf[:incl]
	if _, err := io.ReadFull(pr.r, pr.buf); err != nil {
		return 0, nil, fmt.Errorf("ingest: truncated pcap record: %w", err)
	}
	ts := sec * 1e9
	if pr.nanos {
		ts += sub
	} else {
		ts += sub * 1e3
	}
	pr.n++
	return sim.Time(ts), pr.buf, nil
}

// innerIPv4 strips the link-layer header for the reader's link type and
// returns the raw IPv4 packet bytes, or ok=false when the frame does
// not carry plain IPv4 (e.g. an Ethernet frame with a VLAN tag or ARP).
func (pr *PcapReader) innerIPv4(frame []byte) ([]byte, bool) {
	switch pr.link {
	case LinkTypeRaw, LinkTypeIPv4:
		if len(frame) > 0 && frame[0]>>4 == 4 {
			return frame, true
		}
	case LinkTypeEthernet:
		const ethLen = 14
		if len(frame) >= ethLen && binary.BigEndian.Uint16(frame[12:]) == 0x0800 {
			return frame[ethLen:], true
		}
	case LinkTypeNull:
		// 4-byte AF family in file byte order; AF_INET is 2 everywhere.
		if len(frame) >= 4 && pr.order.Uint32(frame) == 2 {
			return frame[4:], true
		}
	}
	return nil, false
}

// PcapSource adapts a pcap file to a telescope record Source: each
// packet is parsed by the netsim wire codec and captured as a Record.
// Payload content is retained when it carries any non-zero byte (so
// exploit signatures survive), and collapses to a bare length
// otherwise — the telescope trace model. Frames that
// are not parseable IPv4 (foreign link protocols, truncated captures,
// packets with IP/TCP options the codec rejects) are skipped and
// counted in Skipped, so real telescope captures with stray noise still
// import.
type PcapSource struct {
	pr *PcapReader
	// Skipped counts frames that could not be converted.
	Skipped uint64
	pkt     netsim.Packet
}

// NewPcapSource validates the pcap header of r.
func NewPcapSource(r io.Reader) (*PcapSource, error) {
	pr, err := NewPcapReader(r)
	if err != nil {
		return nil, err
	}
	return &PcapSource{pr: pr}, nil
}

// Read implements telescope.Source.
func (ps *PcapSource) Read(rec *telescope.Record) error {
	for {
		ts, frame, err := ps.pr.Next()
		if err != nil {
			return err
		}
		inner, ok := ps.pr.innerIPv4(frame)
		if !ok {
			ps.Skipped++
			continue
		}
		if err := ps.pkt.Unmarshal(inner); err != nil {
			ps.Skipped++
			continue
		}
		*rec = telescope.RecordOf(ts, &ps.pkt)
		// Non-zero payload bytes are content (exploit signatures) and
		// must survive the round trip — a live wire capture replays the
		// same infections it served. All-zero payloads collapse to
		// PayLen-only records, the historical trace model, and
		// re-materialize as the same zero-filled bytes either way.
		if hasContent(ps.pkt.Payload) {
			rec.Payload = append([]byte(nil), ps.pkt.Payload...)
		}
		return nil
	}
}

// WritePcap converts a whole record Source into a pcap savefile,
// materializing each record as wire bytes. It returns the packet count.
// This is how gateway -capture output and generated traces become files
// tcpdump and Wireshark open directly.
func WritePcap(w io.Writer, src telescope.Source) (uint64, error) {
	pw, err := NewPcapWriter(w)
	if err != nil {
		return 0, err
	}
	var rec telescope.Record
	var buf []byte
	for {
		err := src.Read(&rec)
		if err == io.EOF {
			return pw.Count(), pw.Flush()
		}
		if err != nil {
			return pw.Count(), err
		}
		pkt := rec.Packet()
		if n := pkt.WireLen(); cap(buf) < n {
			buf = make([]byte, n)
		} else {
			buf = buf[:n]
		}
		pkt.MarshalInto(buf)
		if err := pw.WritePacket(rec.At, buf); err != nil {
			return pw.Count(), err
		}
	}
}
