package ingest

// WireSource adapts a live Listener into a telescope.Source, which is
// what removes the wire/parallel wall: live ingest becomes "Replay from
// a wire-backed source", so the parallel engine's existing epoch
// feeding machinery (core.ReplayOver) quantizes wire arrivals onto the
// epoch grid with exactly the mechanics an offline pcap replay uses.
// Records are scheduled from the single-threaded pre-epoch hook of the
// epoch they fall in, so kernel insertion order — the tie-breaker for
// same-instant events — is identical between a live run and a replay of
// its capture.
//
// Three properties make the live run *replayable* (byte-identical to a
// sequential replay of its own capture):
//
//  1. Monotone quantization. Wire arrivals can interleave out of order
//     across decap shards; the source clamps every emitted record time
//     to be >= the previous one (counted in Clamped), so downstream it
//     is a time-sorted source. Sorted sources never clamp in the
//     feeder, which is the precondition for adaptive epoch widening to
//     leave the bytes unchanged (see core.ReplayOver).
//  2. Record normalization. The emitted record — not the raw datagram —
//     is the replay currency: the capture writes the record's own
//     materialized packet, so a replay parses back precisely what the
//     live run scheduled. Non-zero payload content (exploit bytes) is
//     copied out of the frame and survives the round trip.
//  3. Time-sorted capture. The capture is written in emission order at
//     the clamped times, so it is sorted by construction and replays
//     through the same feeder path without clamping.
//
// Read blocks until a frame arrives or the listener closes and drains;
// that is the conservative contract — virtual time must not advance
// past arrivals that have not happened yet, and wall-clock silence must
// not advance virtual time at all (it would not replay).

import (
	"io"
	"sync"
	"sync/atomic"

	"potemkin/internal/metrics"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

// WireSource turns a Listener's decapsulated frames into a time-sorted
// stream of telescope records. Configure the exported fields before the
// first Read; the counters may be read from any goroutine mid-run.
type WireSource struct {
	// L is the listener to drain. Read returns io.EOF once L is closed
	// and every queued frame has been consumed.
	L *Listener
	// Speedup scales wall arrival offsets onto virtual time under plain
	// (non-timestamped) framing: virtual = wall_offset * Speedup. Zero
	// means 1. Ignored for timestamped frames, whose virtual time is
	// exact.
	Speedup float64
	// Capture, when non-nil, receives every emitted record as one pcap
	// packet at its emitted (clamped) time — the live run's replayable
	// artifact. The writer is flushed when the source reaches EOF; the
	// caller owns the underlying file.
	Capture *PcapWriter
	// Metrics, when non-nil, registers the ingest_arrival_lag_ms
	// histogram: how far behind the already-emitted virtual stream each
	// frame arrived (0 for in-order arrivals, the clamp magnitude
	// otherwise). Bucketed by the registry's histogram, it shows whether
	// ingest reordering or barrier wait bounds live throughput.
	Metrics *metrics.Registry

	// QueueDepth samples the listener queue depth once per frame — the
	// E11 queue-occupancy measurement, single-threaded like the Read
	// loop that feeds it.
	QueueDepth metrics.Histogram

	merged  <-chan *Frame
	started bool
	last    sim.Time
	lag     *metrics.Hist
	buf     []byte
	err     error

	emitted atomic.Uint64
	clamped atomic.Uint64
}

// Emitted returns the number of records handed to the replay machinery.
func (ws *WireSource) Emitted() uint64 { return ws.emitted.Load() }

// Clamped returns how many frames arrived behind the emitted virtual
// stream and were quantized forward to keep the source time-sorted.
func (ws *WireSource) Clamped() uint64 { return ws.clamped.Load() }

// Read implements telescope.Source: it blocks for the next frame, maps
// its timestamp onto the monotone virtual stream, and emits it as a
// record (copying any payload content out of the pooled frame). The
// capture, when configured, is written before the record is returned,
// so a record the simulation saw is always in the artifact.
func (ws *WireSource) Read(rec *telescope.Record) error {
	if !ws.started {
		ws.started = true
		ws.merged = mergeFrames(ws.L)
		if ws.Metrics != nil {
			ws.lag = ws.Metrics.Hist("ingest_arrival_lag_ms")
		}
	}
	if ws.err != nil {
		return ws.err
	}
	f, ok := <-ws.merged
	if !ok {
		if ws.Capture != nil {
			if err := ws.Capture.Flush(); err != nil {
				ws.err = err
				return err
			}
		}
		return io.EOF
	}
	speed := ws.Speedup
	if speed <= 0 {
		speed = 1
	}
	ts := f.TS
	if !ws.L.cfg.Timestamped && speed != 1 {
		ts = sim.Time(float64(ts) * speed)
	}
	if ts < ws.last {
		if ws.lag != nil {
			ws.lag.Observe(float64(ws.last-ts) / 1e6)
		}
		ts = ws.last
		ws.clamped.Add(1)
	} else {
		if ws.lag != nil {
			ws.lag.Observe(0)
		}
		ws.last = ts
	}
	ws.QueueDepth.Observe(float64(ws.L.QueueDepth()))
	*rec = telescope.RecordOf(ts, &f.Pkt)
	if hasContent(f.Pkt.Payload) {
		rec.Payload = append([]byte(nil), f.Pkt.Payload...)
	}
	ws.L.Release(f)
	ws.emitted.Add(1)
	if ws.Capture != nil {
		pkt := rec.Packet()
		if n := pkt.WireLen(); cap(ws.buf) < n {
			ws.buf = make([]byte, n)
		} else {
			ws.buf = ws.buf[:n]
		}
		pkt.MarshalInto(ws.buf)
		if err := ws.Capture.WritePacket(ts, ws.buf); err != nil {
			// A broken capture voids the replayability contract; fail
			// the feed rather than serve an unreplayable run.
			ws.err = err
			return err
		}
	}
	return nil
}

// hasContent reports whether p carries any non-zero byte. All-zero
// payloads collapse to PayLen-only records — the same packet bytes
// re-materialize either way, and zero-filled traces keep their
// historical record form.
func hasContent(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return true
		}
	}
	return false
}

// mergeFrames fans the listener's shard queues into one channel. With
// one shard this is a direct handoff; with several, interleaving across
// shards follows goroutine scheduling (per-destination order is still
// preserved, because the listener shards by destination).
func mergeFrames(l *Listener) <-chan *Frame {
	if l.Shards() == 1 {
		return l.Frames(0)
	}
	merged := make(chan *Frame, l.Shards())
	var wg sync.WaitGroup
	for i := 0; i < l.Shards(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for f := range l.Frames(i) {
				merged <- f
			}
		}(i)
	}
	go func() {
		wg.Wait()
		close(merged)
	}()
	return merged
}
