package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

func testRecords(t *testing.T, n int) []telescope.Record {
	t.Helper()
	cfg := telescope.DefaultGenConfig()
	cfg.Duration = 20 * time.Second
	cfg.Rate = float64(n) / 20
	cfg.Seed = 99
	recs, err := telescope.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty generated trace")
	}
	return recs
}

// TestPcapWriteReadRoundTrip proves raw packets and their nanosecond
// timestamps survive write+read exactly.
func TestPcapWriteReadRoundTrip(t *testing.T) {
	recs := testRecords(t, 500)
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	var scratch [frameBufSize]byte
	for i := range recs {
		n := recs[i].Packet().MarshalInto(scratch[:])
		if err := pw.WritePacket(recs[i].At, scratch[:n]); err != nil {
			t.Fatal(err)
		}
		want = append(want, append([]byte(nil), scratch[:n]...))
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}

	pr, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if pr.LinkType() != LinkTypeRaw {
		t.Fatalf("link type = %d, want %d", pr.LinkType(), LinkTypeRaw)
	}
	for i := range recs {
		ts, data, err := pr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if ts != recs[i].At {
			t.Fatalf("record %d: ts = %d, want %d", i, ts, recs[i].At)
		}
		if !bytes.Equal(data, want[i]) {
			t.Fatalf("record %d: bytes differ", i)
		}
	}
	if _, _, err := pr.Next(); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
}

// TestPcapSourceRoundTrip proves record -> pcap -> record is lossless:
// the full trace re-emerges field for field.
func TestPcapSourceRoundTrip(t *testing.T) {
	recs := testRecords(t, 500)
	var buf bytes.Buffer
	n, err := WritePcap(&buf, &telescope.SliceSource{Recs: recs})
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(recs)) {
		t.Fatalf("wrote %d records, want %d", n, len(recs))
	}
	src, err := NewPcapSource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var rec telescope.Record
	for i := range recs {
		if err := src.Read(&rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !rec.Equal(&recs[i]) {
			t.Fatalf("record %d: got %+v, want %+v", i, rec, recs[i])
		}
	}
	if err := src.Read(&rec); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
	if src.Skipped != 0 {
		t.Fatalf("Skipped = %d, want 0", src.Skipped)
	}
}

// writeForeignPcap builds a pcap file the way another tool would: given
// byte order, timestamp precision, and link type, with link headers
// wrapped around each IPv4 packet.
func writeForeignPcap(order binary.ByteOrder, nanos bool, link uint32, pkts [][]byte, ts []sim.Time) []byte {
	var buf bytes.Buffer
	hdr := make([]byte, pcapFileHeaderLen)
	magic := uint32(pcapMagicUS)
	if nanos {
		magic = pcapMagicNS
	}
	order.PutUint32(hdr[0:], magic)
	order.PutUint16(hdr[4:], pcapVMajor)
	order.PutUint16(hdr[6:], pcapVMinor)
	order.PutUint32(hdr[16:], maxPcapPacket)
	order.PutUint32(hdr[20:], link)
	buf.Write(hdr)
	for i, p := range pkts {
		var frame []byte
		switch link {
		case LinkTypeEthernet:
			eth := make([]byte, 14)
			binary.BigEndian.PutUint16(eth[12:], 0x0800)
			frame = append(eth, p...)
		case LinkTypeNull:
			af := make([]byte, 4)
			order.PutUint32(af, 2) // AF_INET
			frame = append(af, p...)
		default:
			frame = p
		}
		rec := make([]byte, pcapRecordHeaderLen)
		order.PutUint32(rec[0:], uint32(uint64(ts[i])/1e9))
		sub := uint64(ts[i]) % 1e9
		if !nanos {
			sub /= 1e3
		}
		order.PutUint32(rec[4:], uint32(sub))
		order.PutUint32(rec[8:], uint32(len(frame)))
		order.PutUint32(rec[12:], uint32(len(frame)))
		buf.Write(rec)
		buf.Write(frame)
	}
	return buf.Bytes()
}

// TestPcapForeignFormats reads files as tcpdump on various platforms
// would write them: both byte orders, both precisions, and the
// Ethernet/NULL/IPV4 link types.
func TestPcapForeignFormats(t *testing.T) {
	pkt := netsim.TCPSyn(netsim.MustParseAddr("1.2.3.4"), netsim.MustParseAddr("10.5.0.9"), 4444, 445, 7)
	raw := pkt.Marshal()
	// Microsecond files truncate: use a µs-aligned timestamp so the
	// round trip is exact in both precisions.
	at := sim.Time(3*1e9 + 123456000)

	cases := []struct {
		name  string
		order binary.ByteOrder
		nanos bool
		link  uint32
	}{
		{"le-us-raw", binary.LittleEndian, false, LinkTypeRaw},
		{"be-us-raw", binary.BigEndian, false, LinkTypeRaw},
		{"le-ns-eth", binary.LittleEndian, true, LinkTypeEthernet},
		{"be-ns-eth", binary.BigEndian, true, LinkTypeEthernet},
		{"le-ns-null", binary.LittleEndian, true, LinkTypeNull},
		{"be-us-ipv4", binary.BigEndian, false, LinkTypeIPv4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			file := writeForeignPcap(tc.order, tc.nanos, tc.link, [][]byte{raw}, []sim.Time{at})
			src, err := NewPcapSource(bytes.NewReader(file))
			if err != nil {
				t.Fatal(err)
			}
			var rec telescope.Record
			if err := src.Read(&rec); err != nil {
				t.Fatal(err)
			}
			if rec.At != at || rec.Src != pkt.Src || rec.Dst != pkt.Dst ||
				rec.DstPort != 445 || rec.Proto != netsim.ProtoTCP {
				t.Fatalf("got %+v", rec)
			}
			if err := src.Read(&rec); err != io.EOF {
				t.Fatalf("second read: %v, want io.EOF", err)
			}
		})
	}
}

// TestPcapSkipsForeignFrames proves non-IPv4 frames (ARP and friends)
// are skipped and counted, not fatal.
func TestPcapSkipsForeignFrames(t *testing.T) {
	pkt := netsim.TCPSyn(netsim.MustParseAddr("1.2.3.4"), netsim.MustParseAddr("10.5.0.9"), 4444, 445, 7)
	raw := pkt.Marshal()
	var buf bytes.Buffer
	pw, _ := NewPcapWriter(&buf)
	pw.WritePacket(1e9, []byte{0x60, 0, 0, 0}) // IPv6: not ours
	pw.WritePacket(2e9, raw)                   // good
	pw.WritePacket(3e9, []byte{0x45})          // truncated IPv4
	pw.Flush()
	src, err := NewPcapSource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var rec telescope.Record
	if err := src.Read(&rec); err != nil || rec.At != 2e9 {
		t.Fatalf("read = %+v, %v", rec, err)
	}
	if err := src.Read(&rec); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if src.Skipped != 2 {
		t.Fatalf("Skipped = %d, want 2", src.Skipped)
	}
}

// TestPcapRejects covers the codec's refusal paths.
func TestPcapRejects(t *testing.T) {
	if _, err := NewPcapReader(bytes.NewReader([]byte("not a pcap file, not even close"))); !errors.Is(err, ErrPcapMagic) {
		t.Fatalf("bad magic: %v", err)
	}

	hdr := make([]byte, pcapFileHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagicNS)
	binary.LittleEndian.PutUint16(hdr[4:], 9) // version from the future
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRaw)
	if _, err := NewPcapReader(bytes.NewReader(hdr)); !errors.Is(err, ErrPcapVersion) {
		t.Fatalf("bad version: %v", err)
	}

	binary.LittleEndian.PutUint16(hdr[4:], pcapVMajor)
	binary.LittleEndian.PutUint32(hdr[20:], 147) // LINKTYPE_USER0
	if _, err := NewPcapReader(bytes.NewReader(hdr)); !errors.Is(err, ErrPcapLink) {
		t.Fatalf("bad link: %v", err)
	}

	// A record header claiming a multi-megabyte packet must be refused
	// before any allocation.
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRaw)
	rec := make([]byte, pcapRecordHeaderLen)
	binary.LittleEndian.PutUint32(rec[8:], 1<<24)
	pr, err := NewPcapReader(bytes.NewReader(append(hdr, rec...)))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pr.Next(); !errors.Is(err, ErrPcapOversize) {
		t.Fatalf("oversize: %v", err)
	}

	var wbuf bytes.Buffer
	pw, _ := NewPcapWriter(&wbuf)
	if err := pw.WritePacket(0, make([]byte, maxPcapPacket+1)); !errors.Is(err, ErrPcapOversize) {
		t.Fatalf("oversize write: %v", err)
	}
}
