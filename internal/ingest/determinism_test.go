package ingest_test

// The loopback determinism proof: a trace replayed over a real UDP
// socket must drive the honeyfarm to the exact same final state as the
// same trace replayed in process. This is the property that lets wire
// experiments be debugged by deterministic re-simulation. It holds
// because (a) the timestamped framing carries exact virtual
// nanoseconds, so arrival jitter never reaches the simulation, and
// (b) the bridge injects with the same schedule-one/run-to-it kernel
// mechanics as telescope.StreamReplayer.

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	potemkin "potemkin"
	"potemkin/internal/ingest"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

const detSeed = 42

func detTrace(t testing.TB) []telescope.Record {
	t.Helper()
	cfg := telescope.DefaultGenConfig()
	cfg.Duration = 20 * time.Second
	cfg.Rate = 300
	cfg.Seed = detSeed
	recs, err := telescope.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func statsJSON(t testing.TB, hf *potemkin.Honeyfarm) []byte {
	t.Helper()
	b, err := json.Marshal(hf.Stats())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runInProcess replays the trace through the facade directly.
func runInProcess(t testing.TB, recs []telescope.Record) []byte {
	hf := potemkin.MustNew(potemkin.Options{Seed: detSeed})
	defer hf.Close()
	if _, err := hf.ReplayStream(&telescope.SliceSource{Recs: recs}); err != nil {
		t.Fatal(err)
	}
	return statsJSON(t, hf)
}

// runOverWire converts the trace to a pcap file, replays the pcap over
// a loopback UDP socket into a listener, and pumps the frames into an
// identically-seeded honeyfarm. The sender is flow-controlled against
// the listener's progress so no queue ever overflows: determinism is
// only claimed for lossless transport.
func runOverWire(t testing.TB, recs []telescope.Record) []byte {
	var pcap bytes.Buffer
	if _, err := ingest.WritePcap(&pcap, &telescope.SliceSource{Recs: recs}); err != nil {
		t.Fatal(err)
	}

	l, err := ingest.Listen(ingest.Config{Addr: "127.0.0.1:0", Timestamped: true})
	if err != nil {
		t.Fatal(err)
	}
	hf := potemkin.MustNew(potemkin.Options{Seed: detSeed})
	defer hf.Close()
	bridge := hf.WireBridge(1)

	pumped := make(chan sim.Time)
	go func() { pumped <- bridge.Pump(l, time.Millisecond) }()

	s, err := ingest.DialWire(l.Addr().String(), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	src, err := ingest.NewPcapSource(bytes.NewReader(pcap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sent, _, err := ingest.Replay(s, src, ingest.ReplayOptions{
		MaxRate: true,
		// Keep at most 1024 datagrams in flight ahead of the decap
		// workers so the bounded queues never overflow.
		FlowControl: func(n uint64) {
			for n-l.Stats().Enqueued > 1024 {
				time.Sleep(50 * time.Microsecond)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Let the listener finish receiving, then close it; Pump drains the
	// queues and returns.
	waitUntil(t, func() bool { return l.Stats().Received == sent })
	l.Close()
	select {
	case <-pumped:
	case <-time.After(10 * time.Second):
		t.Fatal("bridge pump did not finish")
	}

	st := l.Stats()
	if st.Dropped != 0 || st.FrameErrors != 0 || st.SeqGaps != 0 {
		t.Fatalf("transport was lossy, determinism void: %+v", st)
	}
	if bridge.Delivered != sent {
		t.Fatalf("delivered %d of %d", bridge.Delivered, sent)
	}
	return statsJSON(t, hf)
}

func waitUntil(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWireReplayDeterminism is the acceptance test: same seed, same
// trace, one run in process and one over a real socket through the pcap
// codec, byte-identical final stats.
func TestWireReplayDeterminism(t *testing.T) {
	recs := detTrace(t)
	ref := runInProcess(t, recs)
	wire := runOverWire(t, recs)
	if !bytes.Equal(ref, wire) {
		t.Fatalf("wire replay diverged from in-process replay\n in-process: %s\n wire:       %s", ref, wire)
	}
	// And a second wire run reproduces the first.
	again := runOverWire(t, recs)
	if !bytes.Equal(wire, again) {
		t.Fatalf("wire replay not reproducible\n first:  %s\n second: %s", wire, again)
	}
}
