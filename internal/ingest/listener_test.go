package ingest

import (
	"encoding/binary"
	"testing"
	"time"

	"potemkin/internal/gre"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

// collect reads exactly n frames from the listener (all shards) or
// fails the test after a deadline. Frames are cloned to records and
// released.
func collect(t *testing.T, l *Listener, n int) []telescope.Record {
	t.Helper()
	var out []telescope.Record
	deadline := time.After(5 * time.Second)
	for len(out) < n {
		for i := 0; i < l.Shards(); i++ {
			select {
			case f, ok := <-l.Frames(i):
				if !ok {
					t.Fatalf("frames channel closed after %d of %d", len(out), n)
				}
				out = append(out, telescope.RecordOf(f.TS, &f.Pkt))
				l.Release(f)
			case <-deadline:
				t.Fatalf("timed out after %d of %d frames", len(out), n)
			case <-time.After(10 * time.Millisecond):
				// try the next shard
			}
		}
	}
	return out
}

// TestWireLoopbackRoundTrip sends GRE-over-UDP packets through a real
// loopback socket and proves every record field and virtual timestamp
// survives: encap -> wire -> decap is lossless.
func TestWireLoopbackRoundTrip(t *testing.T) {
	recs := testRecords(t, 300)
	l, err := Listen(Config{Addr: "127.0.0.1:0", Timestamped: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s, err := DialWire(l.Addr().String(), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := range recs {
		if err := s.SendPacket(recs[i].At, recs[i].Packet()); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, l, len(recs))
	for i := range recs {
		if !got[i].Equal(&recs[i]) {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	st := l.Stats()
	if st.Received != uint64(len(recs)) || st.Enqueued != uint64(len(recs)) {
		t.Fatalf("stats = %+v", st)
	}
	if st.FrameErrors != 0 || st.Dropped != 0 || st.SeqGaps != 0 {
		t.Fatalf("unexpected loss: %+v", st)
	}
}

// TestWireLoopbackSharded runs the same round trip across several decap
// shards; per-destination order must survive even though global order
// may not.
func TestWireLoopbackSharded(t *testing.T) {
	recs := testRecords(t, 300)
	l, err := Listen(Config{Addr: "127.0.0.1:0", Timestamped: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s, err := DialWire(l.Addr().String(), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan []telescope.Record)
	go func() {
		var out []telescope.Record
		for len(out) < len(recs) {
			for i := 0; i < l.Shards(); i++ {
				select {
				case f := <-l.Frames(i):
					if f != nil {
						out = append(out, telescope.RecordOf(f.TS, &f.Pkt))
						l.Release(f)
					}
				default:
				}
			}
		}
		done <- out
	}()
	for i := range recs {
		if err := s.SendPacket(recs[i].At, recs[i].Packet()); err != nil {
			t.Fatal(err)
		}
	}
	var got []telescope.Record
	select {
	case got = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out collecting sharded frames")
	}

	// Per-destination subsequences keep their order.
	wantByDst := map[netsim.Addr][]telescope.Record{}
	for _, r := range recs {
		wantByDst[r.Dst] = append(wantByDst[r.Dst], r)
	}
	gotByDst := map[netsim.Addr][]telescope.Record{}
	for _, r := range got {
		gotByDst[r.Dst] = append(gotByDst[r.Dst], r)
	}
	for dst, want := range wantByDst {
		g := gotByDst[dst]
		if len(g) != len(want) {
			t.Fatalf("dst %s: %d records, want %d", dst, len(g), len(want))
		}
		for i := range want {
			if !g[i].Equal(&want[i]) {
				t.Fatalf("dst %s record %d: got %+v, want %+v", dst, i, g[i], want[i])
			}
		}
	}
}

// TestSeqGapAccounting proves missing GRE sequence numbers are counted
// per tunnel key.
func TestSeqGapAccounting(t *testing.T) {
	l, err := Listen(Config{Addr: "127.0.0.1:0", Timestamped: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s, err := DialWire(l.Addr().String(), 3, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pkt := netsim.TCPSyn(netsim.MustParseAddr("1.2.3.4"), netsim.MustParseAddr("10.5.0.9"), 4444, 445, 0)
	s.SendPacket(1, pkt) // seq 0
	s.SendPacket(2, pkt) // seq 1
	s.seq += 5           // simulate five lost datagrams
	s.SendPacket(3, pkt) // seq 7
	collect(t, l, 3)
	if gaps := l.Stats().SeqGaps; gaps != 5 {
		t.Fatalf("SeqGaps = %d, want 5", gaps)
	}
}

// TestFrameErrors proves undecodable datagrams are counted, not fatal.
func TestFrameErrors(t *testing.T) {
	l, err := Listen(Config{Addr: "127.0.0.1:0", Timestamped: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s, err := DialWire(l.Addr().String(), 3, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Garbage straight to the socket: too short, bad GRE, bad inner IP.
	s.conn.Write([]byte{1, 2, 3})
	junk := make([]byte, 64)
	s.conn.Write(junk)
	pkt := netsim.TCPSyn(netsim.MustParseAddr("1.2.3.4"), netsim.MustParseAddr("10.5.0.9"), 4444, 445, 0)
	s.SendPacket(1, pkt)
	collect(t, l, 1)
	st := l.Stats()
	if st.FrameErrors != 2 {
		t.Fatalf("FrameErrors = %d (stats %+v), want 2", st.FrameErrors, st)
	}
	if st.Enqueued != 1 {
		t.Fatalf("Enqueued = %d, want 1", st.Enqueued)
	}
}

// buildWireFrame assembles the timestamped framing for one packet the
// way WireSender does, into a fresh buffer.
func buildWireFrame(ts sim.Time, key, seq uint32, pkt *netsim.Packet) []byte {
	raw := pkt.Marshal()
	h := gre.Header{HasKey: true, HasSequence: true, Key: key, Sequence: seq}
	buf := make([]byte, tsPrefixLen+h.Len()+len(raw))
	binary.BigEndian.PutUint64(buf, uint64(ts))
	gre.EncapInto(&h, buf[tsPrefixLen:], raw)
	return buf
}

// TestDecapZeroAllocs pins the acceptance criterion: the decap hot path
// (timestamp strip, GRE decap, in-place IPv4 parse) performs zero heap
// allocations per packet.
func TestDecapZeroAllocs(t *testing.T) {
	pkt := netsim.TCPSyn(netsim.MustParseAddr("1.2.3.4"), netsim.MustParseAddr("10.5.0.9"), 4444, 445, 99)
	wire := buildWireFrame(12345, 7, 0, pkt)
	l := &Listener{cfg: Config{Timestamped: true, Shards: 1}}
	f := &Frame{}
	copy(f.Buf[:], wire)
	f.N = len(wire)
	lastSeq := map[uint32]uint32{7: 0} // pre-seeded, as in steady state
	if !l.decode(f, lastSeq) {
		t.Fatal("decode failed")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if !l.decode(f, lastSeq) {
			t.Fatal("decode failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("decap path allocates %.1f times per packet, want 0", allocs)
	}
	if f.Pkt.Dst != pkt.Dst || f.Pkt.DstPort != 445 || f.TS != 12345 || f.Key != 7 {
		t.Fatalf("decoded frame = %+v", f)
	}
}

// BenchmarkIngestDecap measures the per-packet cost of the wire decap
// hot path (the number recorded in BENCH_core.json).
func BenchmarkIngestDecap(b *testing.B) {
	pkt := netsim.TCPSyn(netsim.MustParseAddr("1.2.3.4"), netsim.MustParseAddr("10.5.0.9"), 4444, 445, 99)
	wire := buildWireFrame(12345, 7, 0, pkt)
	l := &Listener{cfg: Config{Timestamped: true, Shards: 1}}
	f := &Frame{}
	copy(f.Buf[:], wire)
	f.N = len(wire)
	lastSeq := map[uint32]uint32{7: 0}
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		if !l.decode(f, lastSeq) {
			b.Fatal("decode failed")
		}
	}
}

// BenchmarkWireSenderEncap measures the sender-side encapsulation cost.
func BenchmarkWireSenderEncap(b *testing.B) {
	pkt := netsim.TCPSyn(netsim.MustParseAddr("1.2.3.4"), netsim.MustParseAddr("10.5.0.9"), 4444, 445, 99)
	s := &WireSender{Key: 7, Timestamped: true}
	raw := pkt.Marshal()
	h := gre.Header{HasKey: true, HasSequence: true, Key: s.Key}
	s.buf = make([]byte, tsPrefixLen+h.Len()+len(raw))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(s.buf, uint64(sim.Time(i)))
		h.Sequence = uint32(i)
		gre.EncapInto(&h, s.buf[tsPrefixLen:], raw)
	}
}
