package ingest

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"potemkin/internal/gre"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// Wire framing. A telescope router tunnels raw IPv4 packets to the
// gateway inside GRE; here the GRE packet rides a UDP datagram
// (GRE-in-UDP, the shape of RFC 8086):
//
//	UDP payload = GRE header [+key][+seq] + inner IPv4 packet
//
// Our own senders (cmd/floodgen, the wire replayer) additionally prefix
// an 8-byte big-endian virtual timestamp in nanoseconds — the
// "timestamped" framing — so a replayed trace maps onto *exactly* the
// simulated instants it was recorded at, independent of wall-clock
// jitter on the wire. Plain framing maps arrival wall time onto
// simulated time instead (scaled by the bridge's Speedup).
const (
	tsPrefixLen = 8

	// frameBufSize bounds one datagram. Telescope packets are small
	// (probes, first exploit segments); datagrams longer than this are
	// truncated by the socket read and then refused by the IPv4 parser
	// as inconsistent, landing in FrameErrors.
	frameBufSize = 4096

	// DefaultPort is the listener's conventional UDP port (the
	// GRE-in-UDP destination port assigned by RFC 8086).
	DefaultPort = 4754
)

// Frame is one decapsulated datagram moving from the socket to the
// bridge. Frames are pooled: the bridge must Release every frame it
// receives, after which Pkt (whose Payload aliases Buf) is dead.
type Frame struct {
	Buf [frameBufSize]byte
	N   int // datagram length

	// TS is the frame's virtual timestamp: the wire timestamp under
	// timestamped framing, or the wall-clock offset since the first
	// arrival under plain framing.
	TS sim.Time

	// GRE envelope fields.
	Key    uint32
	Seq    uint32
	HasSeq bool

	// Pkt is the parsed inner packet. Payload aliases Buf.
	Pkt netsim.Packet

	shard int
}

// Config parameterizes a Listener. The zero value of every field except
// Addr has a working default.
type Config struct {
	// Addr is the UDP listen address, e.g. "127.0.0.1:4754".
	Addr string
	// Shards is the number of decap workers and bounded queues the
	// feed is partitioned across (by inner destination address, so
	// per-destination packet order survives). Default 1. Deterministic
	// replay requires 1: with several shards, cross-shard arrival
	// interleaving is scheduling-dependent.
	Shards int
	// QueueLen bounds each shard's queue, in frames. When a queue is
	// full the reader drops the datagram and counts it — explicit
	// backpressure instead of unbounded buffering. Default 4096.
	QueueLen int
	// Timestamped selects the 8-byte virtual-timestamp prefix framing
	// (see the framing comment above).
	Timestamped bool
	// ReadBuffer is the socket receive buffer size hint in bytes
	// (SO_RCVBUF). Default 4 MiB; the OS may clamp it.
	ReadBuffer int
	// Metrics, when set, registers live telemetry (ingest_* series)
	// updated alongside the atomic Stats fields. Nil disables it.
	Metrics *metrics.Registry
}

// Stats is an atomic snapshot of listener activity.
type Stats struct {
	Received    uint64 // datagrams read off the socket
	Bytes       uint64 // datagram bytes read
	FrameErrors uint64 // undecodable frames (short, bad GRE, bad inner IPv4)
	Dropped     uint64 // frames dropped against a full shard queue
	Enqueued    uint64 // frames handed to the bridge side
	SeqGaps     uint64 // missing GRE sequence numbers (sender- or kernel-side loss)
	QueueDepth  int    // current frames queued across shards
	QueueHWM    int    // high-water mark of QueueDepth
}

// Listener receives GRE-over-UDP telescope traffic and feeds
// decapsulated frames into per-shard bounded queues.
type Listener struct {
	cfg  Config
	pc   *net.UDPConn
	raw  []chan *Frame // reader -> decap workers
	out  []chan *Frame // decap workers -> bridge
	pool sync.Pool
	wg   sync.WaitGroup

	received    atomic.Uint64
	bytes       atomic.Uint64
	frameErrors atomic.Uint64
	dropped     atomic.Uint64
	enqueued    atomic.Uint64
	seqGaps     atomic.Uint64
	hwm         atomic.Int64

	t0   atomic.Int64 // wall nanos of first arrival (plain framing)
	once sync.Once

	// Registry handles mirroring the atomic counters above (nil/no-op
	// without Config.Metrics).
	metReceived    *metrics.Counter
	metFrameErrors *metrics.Counter
	metDropped     *metrics.Counter
	metSeqGaps     *metrics.Counter
}

// Listen opens the UDP socket and starts the reader and decap workers.
func Listen(cfg Config) (*Listener, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	if cfg.ReadBuffer <= 0 {
		cfg.ReadBuffer = 4 << 20
	}
	pc, err := net.ListenPacket("udp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	uc, ok := pc.(*net.UDPConn)
	if !ok {
		pc.Close()
		return nil, fmt.Errorf("ingest: %T is not a UDP socket", pc)
	}
	uc.SetReadBuffer(cfg.ReadBuffer) // best effort; the OS may clamp
	l := &Listener{cfg: cfg, pc: uc}
	if m := cfg.Metrics; m != nil {
		l.metReceived = m.Counter("ingest_received_total")
		l.metFrameErrors = m.Counter("ingest_frame_errors_total")
		l.metDropped = m.Counter("ingest_dropped_total")
		l.metSeqGaps = m.Counter("ingest_seq_gaps_total")
	}
	l.pool.New = func() any { return new(Frame) }
	l.raw = make([]chan *Frame, cfg.Shards)
	l.out = make([]chan *Frame, cfg.Shards)
	for i := range l.raw {
		l.raw[i] = make(chan *Frame, cfg.QueueLen)
		l.out[i] = make(chan *Frame, cfg.QueueLen)
	}
	for i := 0; i < cfg.Shards; i++ {
		l.wg.Add(1)
		go l.decapWorker(i)
	}
	go l.readLoop()
	return l, nil
}

// Addr returns the bound socket address (useful with ":0").
func (l *Listener) Addr() net.Addr { return l.pc.LocalAddr() }

// Shards returns the shard count.
func (l *Listener) Shards() int { return l.cfg.Shards }

// Frames returns shard i's decapsulated-frame queue. The channel is
// closed after Close once the shard drains.
func (l *Listener) Frames(i int) <-chan *Frame { return l.out[i] }

// Release returns a frame to the pool. The frame and its packet must
// not be touched afterwards.
func (l *Listener) Release(f *Frame) {
	f.Pkt = netsim.Packet{}
	l.pool.Put(f)
}

// Close stops the reader, drains the workers, and closes the frame
// channels. Frames already queued remain readable until consumed.
func (l *Listener) Close() error {
	err := l.pc.Close()
	l.wg.Wait() // decap workers exit once readLoop closes raw queues
	return err
}

// QueueDepth returns the frames currently queued across all shards
// (raw and decapsulated).
func (l *Listener) QueueDepth() int {
	depth := 0
	for i := range l.out {
		depth += len(l.out[i]) + len(l.raw[i])
	}
	return depth
}

// Stats returns a snapshot of the counters.
func (l *Listener) Stats() Stats {
	depth := l.QueueDepth()
	return Stats{
		Received:    l.received.Load(),
		Bytes:       l.bytes.Load(),
		FrameErrors: l.frameErrors.Load(),
		Dropped:     l.dropped.Load(),
		Enqueued:    l.enqueued.Load(),
		SeqGaps:     l.seqGaps.Load(),
		QueueDepth:  depth,
		QueueHWM:    int(l.hwm.Load()),
	}
}

// readLoop pulls datagrams off the socket into pooled frames and
// dispatches them to decap shards by inner destination address. It is
// the only goroutine that blocks on the socket; on queue overflow it
// drops immediately (counted) so the socket keeps draining.
func (l *Listener) readLoop() {
	defer func() {
		for i := range l.raw {
			close(l.raw[i])
		}
	}()
	for {
		f := l.pool.Get().(*Frame)
		n, _, err := l.pc.ReadFromUDPAddrPort(f.Buf[:])
		if err != nil {
			l.pool.Put(f)
			return // socket closed (or fatally broken): shut down
		}
		if l.cfg.Timestamped {
			// Wire timestamps carry virtual time.
		} else {
			now := time.Now().UnixNano()
			l.once.Do(func() { l.t0.Store(now) })
			f.TS = sim.Time(now - l.t0.Load())
		}
		f.N = n
		l.received.Add(1)
		l.metReceived.Inc()
		l.bytes.Add(uint64(n))
		f.shard = l.shardOf(f.Buf[:n])
		select {
		case l.raw[f.shard] <- f:
			l.trackDepth()
		default:
			l.dropped.Add(1)
			l.metDropped.Inc()
			l.pool.Put(f)
		}
	}
}

// shardOf routes a raw datagram to a shard by peeking at the inner
// destination address, keeping per-destination order within one shard.
// Undecodable frames go to shard 0, whose worker counts them.
func (l *Listener) shardOf(p []byte) int {
	if l.cfg.Shards == 1 {
		return 0
	}
	if l.cfg.Timestamped {
		if len(p) < tsPrefixLen {
			return 0
		}
		p = p[tsPrefixLen:]
	}
	if len(p) < 4 {
		return 0
	}
	// GRE header length from the flags byte, without a full parse.
	greLen := 4
	for _, bit := range []byte{0x80, 0x20, 0x10} {
		if p[0]&bit != 0 {
			greLen += 4
		}
	}
	// Inner IPv4 destination lives at bytes 16..20 of the inner packet.
	if len(p) < greLen+20 {
		return 0
	}
	dst := binary.BigEndian.Uint32(p[greLen+16:])
	return int(dst) % l.cfg.Shards
}

// trackDepth maintains the queue high-water mark.
func (l *Listener) trackDepth() {
	depth := int64(0)
	for i := range l.raw {
		depth += int64(len(l.raw[i]) + len(l.out[i]))
	}
	for {
		old := l.hwm.Load()
		if depth <= old || l.hwm.CompareAndSwap(old, depth) {
			return
		}
	}
}

// decapWorker strips the framing and parses the inner packet for one
// shard. Parsing is in place — the packet payload aliases the frame
// buffer — so the steady-state decap path allocates nothing (see
// BenchmarkIngestDecap). Pushes to the out queue block: backpressure
// propagates to the raw queue, whose overflow the reader counts.
func (l *Listener) decapWorker(shard int) {
	defer l.wg.Done()
	defer close(l.out[shard])
	lastSeq := make(map[uint32]uint32) // GRE key -> last sequence seen
	for f := range l.raw[shard] {
		if !l.decode(f, lastSeq) {
			l.frameErrors.Add(1)
			l.metFrameErrors.Inc()
			l.pool.Put(f)
			continue
		}
		l.out[shard] <- f
		l.enqueued.Add(1)
	}
}

// decode parses a raw frame in place. It returns false on any framing,
// GRE, or inner-IPv4 error.
func (l *Listener) decode(f *Frame, lastSeq map[uint32]uint32) bool {
	p := f.Buf[:f.N]
	if l.cfg.Timestamped {
		if len(p) < tsPrefixLen {
			return false
		}
		f.TS = sim.Time(binary.BigEndian.Uint64(p))
		if f.TS < 0 {
			return false
		}
		p = p[tsPrefixLen:]
	}
	h, inner, err := gre.Decap(p)
	if err != nil {
		return false
	}
	f.Key, f.Seq, f.HasSeq = h.Key, h.Sequence, h.HasSequence
	if h.HasSequence {
		if last, ok := lastSeq[h.Key]; ok && f.Seq > last+1 {
			l.seqGaps.Add(uint64(f.Seq - last - 1))
			l.metSeqGaps.Add(uint64(f.Seq - last - 1))
		}
		lastSeq[h.Key] = f.Seq
	}
	return f.Pkt.Unmarshal(inner) == nil
}
