package ingest

import (
	"fmt"
	"time"

	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/trace"
)

// Bridge moves frames from a Listener into the single-threaded
// simulation. It is the only component that touches the sim kernel, so
// the kernel's no-concurrency rule holds: socket goroutines stop at the
// shard queues, and the bridge alternates "schedule the frame's
// injection event" / "run the kernel to it" — the same mechanics as
// telescope.StreamReplayer, which is what makes a wire replay
// reproduce an in-process replay byte for byte (with one shard and
// timestamped framing).
type Bridge struct {
	K *sim.Kernel
	// Emit receives each inner packet at its mapped virtual time.
	Emit func(now sim.Time, pkt *netsim.Packet)
	// Speedup scales wall arrival time onto virtual time under plain
	// framing: virtual = wall_offset * Speedup. A feed replayed onto
	// the wire 10x faster than recorded maps back to recorded virtual
	// spacing with Speedup=10. Zero means 1. Ignored for timestamped
	// frames, whose virtual time is exact.
	Speedup float64
	// Tracer, when set, receives an instant span event whenever the
	// listener reports new drops, tying wire loss into the same
	// timeline as binding lifecycles. Emitted from the sim thread.
	Tracer *trace.Tracer

	// Delivered counts packets injected into the simulation.
	Delivered uint64
	// Clamped counts frames whose timestamp lagged the virtual clock
	// (cross-shard interleaving or out-of-order arrival) and were
	// injected "now" instead.
	Clamped uint64
	// QueueDepth samples the listener queue depth once per frame, the
	// E11 queue-occupancy measurement.
	QueueDepth metrics.Histogram

	// PumpFn, when set, replaces the kernel pump loop entirely: Pump
	// records the listener for stats and delegates to it. The facade
	// uses this to route a deprecated WireBridge onto the parallel
	// engine's epoch-feeding replay path (a WireSource through
	// core.ReplayOver), where there is no single kernel for the classic
	// schedule-one/run-to-it loop below.
	PumpFn func(l *Listener, tail time.Duration) sim.Time

	// listener is the feed last (or currently) pumped, retained so the
	// facade can surface wire-loss accounting in Snapshot().
	listener *Listener
}

// ListenerStats returns the stats of the listener this bridge is (or
// was last) pumping, and whether one is attached. The listener's
// counters are atomics, so this is safe during a live pump.
func (b *Bridge) ListenerStats() (Stats, bool) {
	if b.listener == nil {
		return Stats{}, false
	}
	return b.listener.Stats(), true
}

// Pump consumes the listener until it is closed and drained, then runs
// the kernel for tail more virtual time (the same epilogue as an
// in-process replay, letting recycling timers settle). It returns the
// virtual time of the last injection.
func (b *Bridge) Pump(l *Listener, tail time.Duration) sim.Time {
	b.listener = l
	if b.PumpFn != nil {
		return b.PumpFn(l, tail)
	}
	speed := b.Speedup
	if speed <= 0 {
		speed = 1
	}
	merged := mergeFrames(l)
	base := b.K.Now()
	var last sim.Time
	var dropsSeen uint64
	for f := range merged {
		ts := f.TS
		if !l.cfg.Timestamped && speed != 1 {
			ts = sim.Time(float64(ts) * speed)
		}
		at := base + ts
		if at < b.K.Now() {
			at = b.K.Now()
			b.Clamped++
		}
		b.QueueDepth.Observe(float64(l.QueueDepth()))
		// Zero-copy handoff: the frame's parsed packet goes straight
		// into dispatch, marked Ephemeral so any consumer that retains
		// it past the dispatch (pending queue, latency timer) clones
		// it first. The injection event fires inside RunUntil below, so
		// the frame is live until then and released right after.
		f.Pkt.Ephemeral = true
		b.K.At(at, func(now sim.Time) {
			b.Delivered++
			b.Emit(now, &f.Pkt)
		})
		b.K.RunUntil(at)
		l.Release(f)
		last = at
		if b.Tracer.Enabled() {
			if d := l.dropped.Load(); d > dropsSeen {
				b.Tracer.Instant(b.K.Now(), "ingest.drop",
					trace.Attr{K: "dropped", V: fmt.Sprint(d - dropsSeen)},
					trace.Attr{K: "total", V: fmt.Sprint(d)})
				dropsSeen = d
			}
		}
	}
	if tail > 0 {
		b.K.RunFor(tail)
	}
	return last
}
