// Package fault is the deterministic fault-injection layer for the
// honeyfarm: it schedules server crashes and recoveries, transient
// flash-clone failures, clone-latency spikes, and farm<->gateway link
// outages against a running farm, entirely on the simulation clock.
//
// Determinism is the point. Every random choice (Poisson crash gaps,
// outage lengths, per-clone failure coin flips) draws from one named
// sim.RNG stream derived from the kernel seed, and every state change
// rides the event queue — so a chaotic run replays identically under
// the same seed, which is what makes failures debuggable.
//
// Faults come from three sources, freely combined:
//
//   - a Script of fixed-time Actions ("crash server 2 at t=30s for
//     20s"),
//   - Poisson background crashes (Config.CrashRate / MeanOutage),
//   - direct calls (Crash, FailClones, CutLink, ...) from experiment
//     code.
package fault

import (
	"fmt"
	"time"

	"potemkin/internal/farm"
	"potemkin/internal/sim"
	"potemkin/internal/vmm"
)

// Kind classifies an injected fault transition.
type Kind string

// Fault kinds. The *End kinds mark a transient window closing.
const (
	KindCrash        Kind = "crash"
	KindRecover      Kind = "recover"
	KindCloneFail    Kind = "clone-fail"
	KindCloneFailEnd Kind = "clone-fail-end"
	KindCloneSlow    Kind = "clone-slow"
	KindCloneSlowEnd Kind = "clone-slow-end"
	KindLinkDown     Kind = "link-down"
	KindLinkUp       Kind = "link-up"
	// KindKillWorker abruptly terminates a cluster worker process
	// (Action.Server is the worker index). In single-process runs the
	// event is recorded but has no effect on the simulation — which is
	// exactly what makes a cluster run with a kill recover to the same
	// bytes as the sequential oracle.
	KindKillWorker Kind = "kill-worker"
)

// Event records one applied fault transition.
type Event struct {
	T      sim.Time
	Kind   Kind
	Server int // server index, or -1 for farm-wide faults
	Detail string
}

// String renders the event for logs and run-to-run comparison.
func (e Event) String() string {
	s := fmt.Sprintf("t=%.3fs %s", e.T.Seconds(), e.Kind)
	if e.Server >= 0 {
		s += fmt.Sprintf(" server=%d", e.Server)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Action is one scripted fault: apply Kind at offset At from Start.
type Action struct {
	At     time.Duration
	Kind   Kind // KindCrash, KindRecover, KindCloneFail, KindCloneSlow, KindLinkDown, KindLinkUp
	Server int  // for KindCrash / KindRecover

	// Duration bounds transient faults: the crash outage, the
	// clone-fail / clone-slow window, the link cut. Zero means the
	// fault holds until an explicit recovering Action.
	Duration time.Duration

	Factor float64 // clone-latency multiplier for KindCloneSlow
	Prob   float64 // per-clone failure probability for KindCloneFail
}

// Config parameterizes an Injector.
type Config struct {
	// Script is a list of fixed-time faults, applied relative to Start.
	Script []Action

	// CrashRate, when positive, crashes each server independently at
	// this Poisson rate (crashes/second), with Exp-distributed outages
	// of mean MeanOutage (default 30s) before automatic recovery.
	CrashRate  float64
	MeanOutage time.Duration
}

// Injector drives faults into a farm on the simulation clock.
type Injector struct {
	K   *sim.Kernel
	F   *farm.Farm
	Cfg Config

	// OnEvent observes every applied fault (nil to ignore).
	OnEvent func(Event)

	// OnKillWorker fires when a KindKillWorker action lands (after the
	// event is recorded). Cluster workers install a hook that aborts
	// the process when the killed index is their own; everywhere else
	// the kill is a recorded no-op. A worker restoring crashed shards
	// from a checkpoint leaves the hook nil, so a replayed kill records
	// the same log event without crash-looping the recovery.
	OnKillWorker func(now sim.Time, worker int)

	rng *sim.RNG
	log []Event
}

// New builds an injector over f. Randomness comes from the kernel's
// "fault" stream, so adding the injector never perturbs the draws any
// other component sees.
func New(k *sim.Kernel, f *farm.Farm, cfg Config) *Injector {
	return &Injector{K: k, F: f, Cfg: cfg, rng: k.Stream("fault")}
}

// Start schedules the script and the Poisson crash processes. Offsets
// are relative to the clock at the call.
func (in *Injector) Start() {
	for _, a := range in.Cfg.Script {
		a := a
		in.K.After(a.At, func(now sim.Time) { in.apply(now, a) })
	}
	if in.Cfg.CrashRate > 0 {
		mean := in.Cfg.MeanOutage
		if mean <= 0 {
			mean = 30 * time.Second
		}
		for i := range in.F.Hosts() {
			in.scheduleCrash(i, mean)
		}
	}
}

// Log returns the applied-fault record in order.
func (in *Injector) Log() []Event { return in.log }

func (in *Injector) apply(now sim.Time, a Action) {
	switch a.Kind {
	case KindCrash:
		in.Crash(now, a.Server, a.Duration)
	case KindRecover:
		in.Recover(now, a.Server)
	case KindCloneFail:
		in.FailClones(now, a.Prob, a.Duration)
	case KindCloneFailEnd:
		in.EndCloneFaults(now)
	case KindCloneSlow:
		in.SlowClones(now, a.Factor, a.Duration)
	case KindCloneSlowEnd:
		in.EndCloneSlow(now)
	case KindLinkDown:
		in.CutLink(now, a.Duration)
	case KindLinkUp:
		in.RestoreLink(now)
	case KindKillWorker:
		in.KillWorker(now, a.Server)
	}
}

// KillWorker records a worker-process kill and notifies the hook. The
// farm is untouched: the fault models losing the process that hosts
// the domain, not the simulated hardware inside it.
func (in *Injector) KillWorker(now sim.Time, worker int) {
	in.record(now, KindKillWorker, worker, "")
	if in.OnKillWorker != nil {
		in.OnKillWorker(now, worker)
	}
}

// Crash kills server i now; a positive outage schedules automatic
// recovery that much later.
func (in *Injector) Crash(now sim.Time, i int, outage time.Duration) {
	if in.F.Hosts()[i].Down() {
		return
	}
	killed := in.F.CrashServer(now, i)
	in.record(now, KindCrash, i, fmt.Sprintf("killed=%d outage=%v", killed, outage))
	if outage > 0 {
		in.K.After(outage, func(then sim.Time) { in.Recover(then, i) })
	}
}

// Recover returns server i to service (no-op if it is up).
func (in *Injector) Recover(now sim.Time, i int) {
	if !in.F.Hosts()[i].Down() {
		return
	}
	in.F.RecoverServer(i)
	in.record(now, KindRecover, i, "")
}

// FailClones makes every flash clone on every server fail with
// probability prob (drawn from the injector's stream) — modeling a
// flaky control plane. A positive dur bounds the window.
func (in *Injector) FailClones(now sim.Time, prob float64, dur time.Duration) {
	for _, h := range in.F.Hosts() {
		h.SetCloneFault(func() error {
			if in.rng.Float64() < prob {
				return vmm.ErrCloneFault
			}
			return nil
		})
	}
	in.record(now, KindCloneFail, -1, fmt.Sprintf("p=%.2f dur=%v", prob, dur))
	if dur > 0 {
		in.K.After(dur, func(then sim.Time) { in.EndCloneFaults(then) })
	}
}

// EndCloneFaults closes a FailClones window.
func (in *Injector) EndCloneFaults(now sim.Time) {
	for _, h := range in.F.Hosts() {
		h.SetCloneFault(nil)
	}
	in.record(now, KindCloneFailEnd, -1, "")
}

// SlowClones multiplies modeled flash-clone latency on every server by
// factor (contended storage, a busy control plane). A positive dur
// bounds the spike.
func (in *Injector) SlowClones(now sim.Time, factor float64, dur time.Duration) {
	for _, h := range in.F.Hosts() {
		h.SetCloneLatencyFactor(factor)
	}
	in.record(now, KindCloneSlow, -1, fmt.Sprintf("x%.1f dur=%v", factor, dur))
	if dur > 0 {
		in.K.After(dur, func(then sim.Time) { in.EndCloneSlow(then) })
	}
}

// EndCloneSlow restores normal clone latency.
func (in *Injector) EndCloneSlow(now sim.Time) {
	for _, h := range in.F.Hosts() {
		h.SetCloneLatencyFactor(1)
	}
	in.record(now, KindCloneSlowEnd, -1, "")
}

// CutLink severs the farm<->gateway data link. A positive dur
// schedules automatic restoration.
func (in *Injector) CutLink(now sim.Time, dur time.Duration) {
	if in.F.LinkDown() {
		return
	}
	in.F.SetLinkDown(true)
	in.record(now, KindLinkDown, -1, fmt.Sprintf("dur=%v", dur))
	if dur > 0 {
		in.K.After(dur, func(then sim.Time) { in.RestoreLink(then) })
	}
}

// RestoreLink reconnects the farm<->gateway data link.
func (in *Injector) RestoreLink(now sim.Time) {
	if !in.F.LinkDown() {
		return
	}
	in.F.SetLinkDown(false)
	in.record(now, KindLinkUp, -1, "")
}

// scheduleCrash arms server i's next Poisson crash.
func (in *Injector) scheduleCrash(i int, meanOutage time.Duration) {
	gap := time.Duration(in.rng.Exp(1/in.Cfg.CrashRate) * float64(time.Second))
	in.K.After(gap, func(now sim.Time) {
		outage := time.Duration(in.rng.Exp(meanOutage.Seconds()) * float64(time.Second))
		in.Crash(now, i, outage)
		in.scheduleCrash(i, meanOutage)
	})
}

// record appends to the log and notifies the observer.
func (in *Injector) record(now sim.Time, kind Kind, server int, detail string) {
	ev := Event{T: now, Kind: kind, Server: server, Detail: detail}
	in.log = append(in.log, ev)
	if in.OnEvent != nil {
		in.OnEvent(ev)
	}
}
