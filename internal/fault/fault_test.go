package fault

import (
	"testing"
	"time"

	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// chaosRun storms a farm+gateway stack with traffic while the injector
// crashes servers at random, then returns the stack and fault record
// for inspection.
type chaosRun struct {
	f   *farm.Farm
	g   *gateway.Gateway
	inj *Injector
	// gwEvents is the gateway's forensic log rendered to strings, for
	// run-to-run comparison.
	gwEvents []string
}

func runChaos(seed uint64) *chaosRun {
	k := sim.NewKernel(seed)
	fc := farm.DefaultConfig()
	fc.Servers = 3
	fc.HostConfig.MemoryBytes = 512 << 20
	fc.Image = farm.ImageSpec{Name: "winxp", NumPages: 8192, ResidentPages: 2048, DiskBlocks: 512, Seed: 42}
	f := farm.MustNew(k, fc)

	cr := &chaosRun{f: f}
	gc := gateway.DefaultConfig()
	gc.IdleTimeout = 3 * time.Second
	gc.MaxLifetime = 15 * time.Second
	gc.SpawnRetryBudget = 1
	gc.ShedOnFull = 200 * time.Millisecond
	gc.EventSink = func(ev gateway.Event) {
		cr.gwEvents = append(cr.gwEvents,
			string(ev.Kind)+" "+ev.Addr+" "+ev.Peer+" "+ev.Detail)
	}
	g := gateway.New(k, gc, f)
	f.SetGateway(g)
	cr.g = g

	cr.inj = New(k, f, Config{
		// Aggressive background chaos: each server crashes about every
		// 10 s and stays down about 3 s.
		CrashRate:  0.1,
		MeanOutage: 3 * time.Second,
		Script: []Action{
			{At: 5 * time.Second, Kind: KindCloneFail, Server: -1, Prob: 0.2, Duration: 4 * time.Second},
			{At: 12 * time.Second, Kind: KindCloneSlow, Server: -1, Factor: 5, Duration: 4 * time.Second},
			{At: 20 * time.Second, Kind: KindLinkDown, Server: -1, Duration: 2 * time.Second},
		},
	})
	cr.inj.Start()

	r := sim.NewRNG(seed * 131)
	for i := 0; i < 1500; i++ {
		dst := gc.Space.Nth(r.Uint64n(gc.Space.Size()) % 256)
		src := netsim.Addr(r.Uint64n(1<<32) | 1)
		g.HandleInbound(k.Now(), netsim.TCPSyn(src, dst, uint16(1024+r.Intn(60000)), 445, uint32(i)))
		k.RunFor(time.Duration(r.Intn(30)) * time.Millisecond)
	}
	k.RunFor(5 * time.Second)
	g.Close()
	return cr
}

// TestRandomFaultScheduleInvariants is the failure-model analogue of
// the farm's random-traffic test: whatever the fault schedule does —
// crashes mid-clone, flaky clones, latency spikes, link cuts — the
// binding ledger must balance and the farm invariants must hold.
func TestRandomFaultScheduleInvariants(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		cr := runChaos(seed)
		if len(cr.inj.Log()) == 0 {
			t.Fatalf("seed %d: no faults applied; test exercised nothing", seed)
		}
		var crashes int
		for _, ev := range cr.inj.Log() {
			if ev.Kind == KindCrash {
				crashes++
			}
		}
		if crashes == 0 {
			t.Errorf("seed %d: Poisson process produced no crashes", seed)
		}
		st := cr.g.Stats()
		if st.BindingsCreated != uint64(cr.g.NumBindings())+st.BindingsRecycled {
			t.Errorf("seed %d: ledger unbalanced: created=%d live=%d recycled=%d",
				seed, st.BindingsCreated, cr.g.NumBindings(), st.BindingsRecycled)
		}
		if err := cr.f.CheckInvariants(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		// Every live VM is still reachable through a binding.
		if cr.f.LiveVMs() > cr.g.NumBindings() {
			t.Errorf("seed %d: %d VMs but only %d bindings",
				seed, cr.f.LiveVMs(), cr.g.NumBindings())
		}
	}
}

// TestSameSeedSameFaultSequence is the determinism guarantee: the
// injector's applied-fault log and the gateway's full event log are
// pure functions of the seed.
func TestSameSeedSameFaultSequence(t *testing.T) {
	a, b := runChaos(7), runChaos(7)
	al, bl := a.inj.Log(), b.inj.Log()
	if len(al) != len(bl) {
		t.Fatalf("fault logs differ in length: %d vs %d", len(al), len(bl))
	}
	for i := range al {
		if al[i].String() != bl[i].String() {
			t.Fatalf("fault log diverges at %d: %q vs %q", i, al[i], bl[i])
		}
	}
	if len(a.gwEvents) != len(b.gwEvents) {
		t.Fatalf("gateway logs differ in length: %d vs %d", len(a.gwEvents), len(b.gwEvents))
	}
	for i := range a.gwEvents {
		if a.gwEvents[i] != b.gwEvents[i] {
			t.Fatalf("gateway log diverges at %d: %q vs %q", i, a.gwEvents[i], b.gwEvents[i])
		}
	}
	// Different seeds produce different schedules (sanity: the stream is
	// actually seeded).
	c := runChaos(8)
	if len(c.inj.Log()) == len(al) {
		same := true
		for i := range al {
			if c.inj.Log()[i].String() != al[i].String() {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical fault schedules")
		}
	}
}

// TestScriptAppliesInOrder pins the scripted path: fixed-time actions
// fire at their offsets and bounded windows close themselves.
func TestScriptAppliesInOrder(t *testing.T) {
	k := sim.NewKernel(3)
	fc := farm.DefaultConfig()
	fc.Servers = 2
	fc.Image = farm.ImageSpec{Name: "winxp", NumPages: 1024, ResidentPages: 256, DiskBlocks: 64, Seed: 1}
	f := farm.MustNew(k, fc)
	inj := New(k, f, Config{Script: []Action{
		{At: time.Second, Kind: KindCrash, Server: 1, Duration: 2 * time.Second},
		{At: 4 * time.Second, Kind: KindLinkDown, Server: -1, Duration: time.Second},
		{At: 6 * time.Second, Kind: KindCloneSlow, Server: -1, Factor: 3, Duration: time.Second},
	}})
	inj.Start()

	k.RunUntil(sim.Start.Add(1500 * time.Millisecond))
	if !f.Hosts()[1].Down() || f.UpServers() != 1 {
		t.Error("scripted crash did not land")
	}
	k.RunUntil(sim.Start.Add(3500 * time.Millisecond))
	if f.Hosts()[1].Down() {
		t.Error("outage did not auto-recover")
	}
	k.RunUntil(sim.Start.Add(4500 * time.Millisecond))
	if !f.LinkDown() {
		t.Error("scripted link cut did not land")
	}
	k.RunUntil(sim.Start.Add(10 * time.Second))
	if f.LinkDown() {
		t.Error("link cut did not auto-restore")
	}

	var kinds []Kind
	for _, ev := range inj.Log() {
		kinds = append(kinds, ev.Kind)
	}
	want := []Kind{KindCrash, KindRecover, KindLinkDown, KindLinkUp, KindCloneSlow, KindCloneSlowEnd}
	if len(kinds) != len(want) {
		t.Fatalf("log = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("log[%d] = %v, want %v (log %v)", i, kinds[i], want[i], kinds)
		}
	}
}
