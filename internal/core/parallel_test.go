package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"potemkin/internal/gateway"
	"potemkin/internal/metrics"
	"potemkin/internal/telescope"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	defer SetParallelism(0)
	for _, workers := range []int{1, 3, 16} {
		SetParallelism(workers)
		const n = 100
		var counts [n]atomic.Int64
		ForEach(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
	ForEach(0, func(int) { t.Fatal("fn called for n=0") })
}

func TestForEachPanicPropagates(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	var ran atomic.Int64
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		ForEach(8, func(i int) {
			ran.Add(1)
			if i == 3 {
				panic("arm failure")
			}
		})
	}()
	// Remaining arms still complete: a failed arm must not strand its
	// siblings' results.
	if ran.Load() != 8 {
		t.Errorf("ran %d of 8 arms", ran.Load())
	}
}

func TestSetParallelismConcurrent(t *testing.T) {
	defer SetParallelism(0)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			SetParallelism(n)
			if Parallelism() < 1 {
				t.Error("Parallelism < 1")
			}
		}(i)
	}
	wg.Wait()
}

// TestParallelMatchesSequential is the regression test the parallel
// runner's determinism claim hangs on: every parallelized sweep must
// render byte-identical tables (and series) whether arms run on one
// goroutine or many. CI runs this under -race, which also proves the
// arms share no mutable state.
func TestParallelMatchesSequential(t *testing.T) {
	defer SetParallelism(0)

	render := func() map[string]string {
		out := make(map[string]string)

		trace := StandardTrace(2, time.Minute)
		space := telescope.DefaultGenConfig().Space
		e3 := RunE3(2, trace, space, []time.Duration{5 * time.Second, 0})
		out["e3"] = e3.Table.String() + metrics.SeriesTable("live", e3.Series...).String()
		out["e3b"] = RunE3ScanFilter(2, trace, space, 30*time.Second, []int{0, 3}).String()

		arms := []E5Arm{
			{Name: "no-honeyfarm", NoHoneyfarm: true},
			{Name: "open", Policy: gateway.PolicyOpen},
			{Name: "internal-reflect", Policy: gateway.PolicyInternalReflect},
		}
		e5 := RunE5(2, arms, 20*time.Second)
		out["e5"] = e5.Table.String() + metrics.SeriesTable("infected", e5.Curves...).String()

		out["e6"] = RunE6(2, []int{8, 16}, []float64{100}, 2).Table.String()

		e10 := RunE10(2, []E10Arm{
			{Name: "no-response"},
			{Name: "/8 + 1m", TelescopeBits: 8, ReactionDelay: time.Minute},
		}, 10*time.Minute, 0.01)
		out["e10"] = e10.Table.String() + metrics.SeriesTable("infected", e10.Curves...).String()
		return out
	}

	SetParallelism(1)
	seq := render()
	SetParallelism(4)
	par := render()

	for name, want := range seq {
		if got := par[name]; got != want {
			t.Errorf("%s diverged between sequential and parallel runs:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				name, want, got)
		}
	}
}
