package core

import (
	"testing"
	"time"
)

func TestRunChaosDegradesGracefully(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, Duration: 45 * time.Second}
	res := RunChaos(cfg)
	if res.Table.NumRows() != 2 {
		t.Fatalf("rows = %d\n%s", res.Table.NumRows(), res.Table)
	}
	f := res.Faulted
	// The crash landed, stranded bindings were recycled through the
	// gateway, and replacement work reached the survivors.
	if f.CrashKilledVMs == 0 {
		t.Fatalf("crash killed no VMs\n%s", res.Table)
	}
	if f.BackendLost != f.CrashKilledVMs {
		t.Errorf("BackendLost = %d, want %d (every stranded binding recycled)",
			f.BackendLost, f.CrashKilledVMs)
	}
	if f.FarmRetries == 0 {
		t.Error("no farm-level retries during the flaky-clone window")
	}
	if len(res.FaultLog) == 0 {
		t.Error("empty fault log")
	}
	// Degraded, not collapsed: the faulted arm still captures a decent
	// share of what the baseline does.
	if f.Captured*2 < res.Baseline.Captured {
		t.Errorf("captures collapsed: %d vs baseline %d", f.Captured, res.Baseline.Captured)
	}
	if !res.ConservationOK() {
		t.Errorf("binding ledger unbalanced\n%s", res.Table)
	}

	// Determinism: the same seed reproduces the identical event stream.
	again := RunChaos(cfg)
	if res.Faulted.EventCount != again.Faulted.EventCount ||
		res.Faulted.EventHash != again.Faulted.EventHash {
		t.Errorf("replay diverged: %d/%#x vs %d/%#x",
			res.Faulted.EventCount, res.Faulted.EventHash,
			again.Faulted.EventCount, again.Faulted.EventHash)
	}
}
