package core

// Replay feeding, factored out of the shard engine so any sim.Barrier
// implementation — the in-process parallel runner or the cluster
// coordinator — replays a telescope source with byte-identical
// semantics: records are batched one epoch ahead (bounded memory),
// out-of-order records clamp forward, and the run extends past the last
// record by an epilogue.

import (
	"io"
	"time"

	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

// ReplayFeeder streams a telescope source into epoch-sized batches.
type ReplayFeeder struct {
	src  telescope.Source
	halt func() bool
	base sim.Time
	last sim.Time

	pending telescope.Record
	have    bool
	done    bool
	err     error
}

// NewReplayFeeder wraps src; record times are offset by base (the
// barrier clock at replay start).
func NewReplayFeeder(src telescope.Source, halt func() bool, base sim.Time) *ReplayFeeder {
	return &ReplayFeeder{src: src, halt: halt, base: base, last: base}
}

// read pulls the next record into pending (consulting halt first) and
// reports whether one is buffered. EOF, halt, and errors mark the
// feeder done.
func (f *ReplayFeeder) read() bool {
	if f.done {
		return false
	}
	if f.have {
		return true
	}
	if f.halt != nil && f.halt() {
		f.done = true
		return false
	}
	err := f.src.Read(&f.pending)
	if err == io.EOF {
		f.done = true
		return false
	}
	if err != nil {
		f.done, f.err = true, err
		return false
	}
	f.pending.At += f.base
	f.have = true
	return true
}

// NextAt reports the time of the next unscheduled record, reading one
// ahead if necessary, or sim.End when the source is exhausted. It is
// the injection horizon adaptive lookahead widens against: no record
// earlier than NextAt can still be fed (for time-sorted sources — see
// ReplayOver).
func (f *ReplayFeeder) NextAt() sim.Time {
	if !f.read() {
		return sim.End
	}
	return f.pending.At
}

// Feed emits every record falling inside [start, end) in trace order.
// Records that sort before start (out-of-order traces) are clamped to
// start, and the clamp sticks so time stays monotonic. halt, when
// non-nil, is consulted before each read and ends the feed early.
func (f *ReplayFeeder) Feed(start, end sim.Time, emit func(at sim.Time, rec telescope.Record)) {
	for f.read() {
		at := f.pending.At
		if at < start {
			at = start
		}
		if at >= end {
			f.pending.At = at // keep the clamp so time stays monotonic
			return            // belongs to a later epoch
		}
		rec := f.pending
		rec.At = at
		if at > f.last {
			f.last = at
		}
		f.have = false
		emit(at, rec)
	}
}

// Done reports whether the source is exhausted (EOF, halt, or error).
func (f *ReplayFeeder) Done() bool { return f.done }

// Err returns the first source error, if any.
func (f *ReplayFeeder) Err() error { return f.err }

// Last returns the latest record time emitted (base when none were).
func (f *ReplayFeeder) Last() sim.Time { return f.last }

// replayStrideEpochs is how many lookahead cells each RunEpochs stride
// spans. The feeder stops the barrier at the first epoch boundary after
// source exhaustion regardless, so the stride only bounds how much
// simulated time one driver-loop iteration covers; it must be at least
// the adaptive-lookahead cell cap for widening to pay off.
const replayStrideEpochs = 256

// ReplayOver streams src into any barrier-driven executor: schedule is
// called single-threaded from the pre-epoch hook for every record
// falling inside the upcoming epoch, in trace order; then the epoch
// runs. After the last record the run extends by epilogue past the
// final record time. Returns the number of records scheduled and the
// first source error.
//
// When the barrier supports adaptive lookahead (the in-process runner),
// the feeder's read-ahead is installed as the injection horizon so
// quiet stretches of the trace pay one barrier per widened window
// instead of one per lookahead cell. For time-sorted sources — which is
// what telescope.Generate and every capture-order pcap produce — the
// widened run is byte-identical to fixed lookahead: a record never
// clamps, so epoch bounds cannot influence record times. An unsorted
// source still replays deterministically per mode, but its forward
// clamps depend on the epoch grid, so only fixed lookahead reproduces
// the historical fixed-epoch bytes for it.
func ReplayOver(b sim.Barrier, src telescope.Source, halt func() bool, epilogue time.Duration,
	schedule func(at sim.Time, rec telescope.Record)) (int, error) {
	f := NewReplayFeeder(src, halt, b.Now())
	n := 0
	b.SetBeforeEpoch(func(start, end sim.Time) {
		f.Feed(start, end, func(at sim.Time, rec telescope.Record) {
			n++
			schedule(at, rec)
		})
	})
	if hb, ok := b.(interface{ SetHorizon(func() sim.Time) }); ok {
		hb.SetHorizon(f.NextAt)
		defer hb.SetHorizon(nil)
	}
	stride := time.Duration(replayStrideEpochs) * b.Lookahead()
	stalled := false
	f.NextAt() // prime, so an empty source is known before the first epoch
	if f.Done() {
		// Nothing to feed: run the single epoch fixed lookahead would
		// have, so the final clock agrees across every mode.
		b.RunFor(b.Lookahead())
	}
	for !f.Done() {
		before := b.Now()
		b.RunEpochs(before.Add(stride), f.Done)
		if b.Now() == before {
			// The barrier refused to advance — a degraded cluster
			// coordinator stops here rather than hanging the feed.
			stalled = true
			break
		}
	}
	b.SetBeforeEpoch(nil)
	if target := f.Last().Add(epilogue); !stalled && target > b.Now() {
		b.RunUntil(target)
	}
	return n, f.Err()
}
