package core

// Replay feeding, factored out of the shard engine so any sim.Barrier
// implementation — the in-process parallel runner or the cluster
// coordinator — replays a telescope source with byte-identical
// semantics: records are batched one epoch ahead (bounded memory),
// out-of-order records clamp forward, and the run extends past the last
// record by an epilogue.

import (
	"io"
	"time"

	"potemkin/internal/sim"
	"potemkin/internal/telescope"
)

// ReplayFeeder streams a telescope source into epoch-sized batches.
type ReplayFeeder struct {
	src  telescope.Source
	halt func() bool
	base sim.Time
	last sim.Time

	pending telescope.Record
	have    bool
	done    bool
	err     error
}

// NewReplayFeeder wraps src; record times are offset by base (the
// barrier clock at replay start).
func NewReplayFeeder(src telescope.Source, halt func() bool, base sim.Time) *ReplayFeeder {
	return &ReplayFeeder{src: src, halt: halt, base: base, last: base}
}

// Feed emits every record falling inside [start, end) in trace order.
// Records that sort before start (out-of-order traces) are clamped to
// start, and the clamp sticks so time stays monotonic. halt, when
// non-nil, is consulted before each read and ends the feed early.
func (f *ReplayFeeder) Feed(start, end sim.Time, emit func(at sim.Time, rec telescope.Record)) {
	for !f.done {
		if !f.have {
			if f.halt != nil && f.halt() {
				f.done = true
				return
			}
			err := f.src.Read(&f.pending)
			if err == io.EOF {
				f.done = true
				return
			}
			if err != nil {
				f.done, f.err = true, err
				return
			}
			f.pending.At += f.base
			f.have = true
		}
		at := f.pending.At
		if at < start {
			at = start
		}
		if at >= end {
			f.pending.At = at // keep the clamp so time stays monotonic
			return            // belongs to a later epoch
		}
		rec := f.pending
		rec.At = at
		if at > f.last {
			f.last = at
		}
		f.have = false
		emit(at, rec)
	}
}

// Done reports whether the source is exhausted (EOF, halt, or error).
func (f *ReplayFeeder) Done() bool { return f.done }

// Err returns the first source error, if any.
func (f *ReplayFeeder) Err() error { return f.err }

// Last returns the latest record time emitted (base when none were).
func (f *ReplayFeeder) Last() sim.Time { return f.last }

// ReplayOver streams src into any barrier-driven executor: schedule is
// called single-threaded from the pre-epoch hook for every record
// falling inside the upcoming epoch, in trace order; then the epoch
// runs. After the last record the run extends by epilogue past the
// final record time. Returns the number of records scheduled and the
// first source error.
func ReplayOver(b sim.Barrier, src telescope.Source, halt func() bool, epilogue time.Duration,
	schedule func(at sim.Time, rec telescope.Record)) (int, error) {
	f := NewReplayFeeder(src, halt, b.Now())
	n := 0
	b.SetBeforeEpoch(func(start, end sim.Time) {
		f.Feed(start, end, func(at sim.Time, rec telescope.Record) {
			n++
			schedule(at, rec)
		})
	})
	stalled := false
	for !f.Done() {
		before := b.Now()
		b.RunFor(b.Lookahead())
		if b.Now() == before {
			// The barrier refused to advance — a degraded cluster
			// coordinator stops here rather than hanging the feed.
			stalled = true
			break
		}
	}
	b.SetBeforeEpoch(nil)
	if target := f.Last().Add(epilogue); !stalled && target > b.Now() {
		b.RunUntil(target)
	}
	return n, f.Err()
}
