package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/netsim"
	"potemkin/internal/telescope"
)

// shardRun is everything observable a shard-engine run produces: the
// summed stats, the injected count, and the exact event-log and trace
// bytes.
type shardRun struct {
	gw       gateway.Stats
	fm       farm.Stats
	guests   guest.Stats
	injected int
	liveVMs  int
	memory   uint64
	dns      uint64
	events   []byte
	trace    []byte
}

// runShardWorkload drives the standard equivalence workload: a
// multi-stage guest population (DNS + second-stage fetches, so safe-
// resolver answers send traffic across shards through the barrier), a
// handful of exploits spanning shards, and a generated telescope trace.
func runShardWorkload(t *testing.T, parallel bool, seed uint64) shardRun {
	t.Helper()
	var ev, tr bytes.Buffer
	gc := gateway.DefaultConfig()
	gc.IdleTimeout = 2 * time.Second
	gc.ReflectionLimit = 128 // cap the reflection cascade: keep CI fast
	fc := farm.DefaultConfig()
	fc.Servers = 4
	fc.Profile = guest.MultiStageDNS("update.evil.example")
	eng, err := NewShardEngine(ShardEngineConfig{
		Shards:   4,
		Parallel: parallel,
		Seed:     seed,
		Gateway:  gc,
		Farm:     fc,
		EventLog: &ev,
		TraceOut: &tr,
	})
	if err != nil {
		t.Fatalf("NewShardEngine: %v", err)
	}

	payload := fc.Profile.ExploitPayload(0)
	if payload == nil {
		t.Fatal("multi-stage profile has no exploit payload")
	}
	for i := 0; i < 4; i++ {
		src := netsim.MustParseAddr(fmt.Sprintf("198.51.100.%d", 10+i))
		dst := netsim.MustParseAddr(fmt.Sprintf("10.5.7.%d", 20+i))
		pkt := netsim.TCPSyn(src, dst, 40000, fc.Profile.ScanDstPort, 1)
		pkt.Flags |= netsim.FlagPSH
		pkt.Payload = payload
		eng.Inject(pkt)
	}

	gcfg := telescope.DefaultGenConfig()
	gcfg.Space = gc.Space
	gcfg.Duration = 2 * time.Second
	gcfg.Rate = 200
	gcfg.Seed = seed
	recs, err := telescope.Generate(gcfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	injected, err := eng.Replay(&telescope.SliceSource{Recs: recs}, nil, time.Millisecond)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	eng.RunFor(3 * time.Second) // let infections scan and bindings recycle
	run := shardRun{
		gw:       eng.GatewayStats(),
		fm:       eng.FarmStats(),
		guests:   eng.GuestTotals(),
		injected: injected,
		liveVMs:  eng.LiveVMs(),
		memory:   eng.MemoryInUse(),
		dns:      eng.DNSQueries(),
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	run.events = ev.Bytes()
	run.trace = tr.Bytes()
	return run
}

// TestShardEngineParallelMatchesSequential is the tentpole equivalence
// proof: with the same seed and configuration, running the epochs on
// goroutines produces byte-identical output to the single-threaded
// oracle — final stats, forensic event log, and span trace. CI runs it
// under -race, so it also proves the epoch isolation is sound.
func TestShardEngineParallelMatchesSequential(t *testing.T) {
	seq := runShardWorkload(t, false, 7)
	par := runShardWorkload(t, true, 7)

	if !reflect.DeepEqual(seq.gw, par.gw) {
		t.Errorf("gateway stats differ:\nseq: %+v\npar: %+v", seq.gw, par.gw)
	}
	if !reflect.DeepEqual(seq.fm, par.fm) {
		t.Errorf("farm stats differ:\nseq: %+v\npar: %+v", seq.fm, par.fm)
	}
	if !reflect.DeepEqual(seq.guests, par.guests) {
		t.Errorf("guest totals differ:\nseq: %+v\npar: %+v", seq.guests, par.guests)
	}
	if seq.injected != par.injected {
		t.Errorf("injected: seq %d, par %d", seq.injected, par.injected)
	}
	if seq.liveVMs != par.liveVMs || seq.memory != par.memory || seq.dns != par.dns {
		t.Errorf("gauges differ: seq vms=%d mem=%d dns=%d, par vms=%d mem=%d dns=%d",
			seq.liveVMs, seq.memory, seq.dns, par.liveVMs, par.memory, par.dns)
	}
	if !bytes.Equal(seq.events, par.events) {
		t.Errorf("event logs differ (seq %d bytes, par %d bytes)", len(seq.events), len(par.events))
	}
	if !bytes.Equal(seq.trace, par.trace) {
		t.Errorf("traces differ (seq %d bytes, par %d bytes)", len(seq.trace), len(par.trace))
	}

	// The workload must actually exercise the cross-shard machinery, or
	// the equivalence proof is vacuous.
	if seq.gw.OutInternal == 0 {
		t.Error("no internal VM-to-VM traffic — cross-shard path not exercised")
	}
	if seq.guests.Stage2Fetches == 0 {
		t.Error("no second-stage fetches — DNS reinjection path not exercised")
	}
	if seq.gw.OutDNSProxied == 0 || seq.dns == 0 {
		t.Errorf("safe resolver idle: proxied=%d served=%d", seq.gw.OutDNSProxied, seq.dns)
	}
	if seq.fm.Infections == 0 {
		t.Error("no infections — exploit injection failed")
	}
	if len(seq.events) == 0 || len(seq.trace) == 0 {
		t.Error("event log or trace empty")
	}
}

// TestShardEngineParallelDeterministic re-runs the parallel mode and
// demands identical bytes — goroutine scheduling must not leak into the
// output.
func TestShardEngineParallelDeterministic(t *testing.T) {
	a := runShardWorkload(t, true, 11)
	b := runShardWorkload(t, true, 11)
	if !bytes.Equal(a.events, b.events) || !bytes.Equal(a.trace, b.trace) {
		t.Fatal("parallel runs with the same seed produced different bytes")
	}
	if !reflect.DeepEqual(a.gw, b.gw) {
		t.Fatalf("parallel runs with the same seed produced different stats:\n%+v\n%+v", a.gw, b.gw)
	}
}

// TestShardEngineServerSplit checks the server-share arithmetic and the
// one-server-per-shard floor.
func TestShardEngineServerSplit(t *testing.T) {
	gc := gateway.DefaultConfig()
	fc := farm.DefaultConfig()
	fc.Servers = 6
	eng, err := NewShardEngine(ShardEngineConfig{Shards: 4, Seed: 1, Gateway: gc, Farm: fc})
	if err != nil {
		t.Fatalf("NewShardEngine: %v", err)
	}
	defer eng.Close()
	var got []int
	for _, d := range eng.Domains() {
		got = append(got, len(d.F.Hosts()))
	}
	want := []int{2, 2, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("server split = %v, want %v", got, want)
	}

	fc.Servers = 3
	if _, err := NewShardEngine(ShardEngineConfig{Shards: 4, Seed: 1, Gateway: gc, Farm: fc}); err == nil {
		t.Fatal("expected error: fewer servers than shards")
	}
}
