package core

import (
	"bytes"
	"testing"
	"time"

	"potemkin/internal/trace"
)

func chaosTraceConfig() ChaosConfig {
	return ChaosConfig{Seed: 7, Servers: 3, Duration: 30 * time.Second}
}

// Same seed, same trace — byte for byte. This is the property that
// makes traces diffable across chaos replays, and it exercises every
// instrumented layer at once (gateway bind/spawn, farm placement, vmm
// clone, crash teardown, recycle).
func TestChaosTraceByteIdentical(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		cfg := chaosTraceConfig()
		cfg.TraceOut = &buf
		RunChaos(cfg)
		return buf.Bytes()
	}
	a := run()
	b := run()
	if len(a) == 0 {
		t.Fatal("trace output empty")
	}
	if !bytes.Equal(a, b) {
		// Find the first differing line for a useful failure message.
		al := bytes.Split(a, []byte("\n"))
		bl := bytes.Split(b, []byte("\n"))
		for i := range al {
			if i >= len(bl) || !bytes.Equal(al[i], bl[i]) {
				t.Fatalf("traces diverge at line %d:\n%s\n---\n%s", i+1, al[i], bl[i])
			}
		}
		t.Fatalf("traces differ in length: %d vs %d bytes", len(a), len(b))
	}
}

// The trace must reconstruct binding lifecycles: every non-root span
// references a parent in the same trace, and every binding root that
// reached the VM has spawn and active children plus the folded
// forensic events.
func TestChaosTraceReconstructsLifecycles(t *testing.T) {
	var buf bytes.Buffer
	cfg := chaosTraceConfig()
	cfg.TraceOut = &buf
	res := RunChaos(cfg)
	recs, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}

	byID := make(map[uint64]*trace.Record, len(recs))
	for i := range recs {
		byID[recs[i].Span] = &recs[i]
	}
	var roots, actives, clones int
	for i := range recs {
		r := &recs[i]
		if r.Parent != 0 {
			p := byID[r.Parent]
			if p == nil {
				t.Fatalf("span %d (%s) has dangling parent %d", r.Span, r.Name, r.Parent)
			}
			if p.Trace != r.Trace {
				t.Fatalf("span %d crosses traces: %d vs parent's %d", r.Span, r.Trace, p.Trace)
			}
		}
		switch r.Name {
		case "binding":
			roots++
			if r.Attr("addr") == "" {
				t.Fatalf("binding root without addr attr: %+v", r)
			}
		case "active":
			actives++
		case "clone":
			clones++
		}
	}
	if roots == 0 || actives == 0 || clones == 0 {
		t.Fatalf("lifecycle spans missing: %d bindings, %d actives, %d clones", roots, actives, clones)
	}
	// Both arms traced: binding roots should cover baseline + faulted.
	wantMin := res.Baseline.BindingsCreated + res.Faulted.BindingsCreated
	if uint64(roots) != wantMin {
		t.Fatalf("binding roots %d, want %d (both arms' BindingsCreated)", roots, wantMin)
	}
}

// Turning tracing on must not perturb the simulation: every stat and
// the forensic-log fingerprint must match a tracing-off run with the
// same seed. (The tracing-off arm equals the pre-tracing baseline by
// construction — the off path is a nil check.)
func TestChaosTracingDoesNotPerturb(t *testing.T) {
	off := RunChaos(chaosTraceConfig())
	var buf bytes.Buffer
	cfg := chaosTraceConfig()
	cfg.TraceOut = &buf
	on := RunChaos(cfg)

	if off.Baseline != on.Baseline {
		t.Fatalf("baseline arm differs with tracing on:\noff: %+v\non:  %+v", off.Baseline, on.Baseline)
	}
	if off.Faulted != on.Faulted {
		t.Fatalf("faulted arm differs with tracing on:\noff: %+v\non:  %+v", off.Faulted, on.Faulted)
	}
}
