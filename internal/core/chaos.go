package core

import (
	"fmt"
	"io"
	"time"

	"potemkin/internal/farm"
	"potemkin/internal/fault"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/trace"
	"potemkin/internal/worm"
)

// The chaos experiment: run the same worm outbreak against an intact
// farm and against one that loses a server mid-run, and show that
// detection and containment degrade proportionally to the lost
// capacity instead of collapsing. The faulted arm exercises the whole
// recovery stack — stranded-binding recycling, clone retry on
// surviving servers, spawn-retry and shedding at the gateway — and its
// event sequence is a pure function of the seed.

// ChaosConfig parameterizes RunChaos. The zero value of every field
// has a sensible default.
type ChaosConfig struct {
	Seed    uint64 // default 1
	Servers int    // default 4

	// CrashServer is the index of the server to kill. Default 0.
	CrashServer int
	// Duration is the epidemic length; the crash lands at Duration/2,
	// once the farm is loaded, and the server recovers at 3*Duration/4.
	// Default 2 minutes.
	Duration time.Duration

	// TraceOut, when set, receives the binding-lifecycle span trace of
	// both arms as JSONL — baseline first, then the faulted arm, with
	// still-open spans flushed at the end of each arm. Two runs with the
	// same seed write byte-identical output (the determinism tests diff
	// exactly this). Nil disables tracing.
	TraceOut io.Writer
}

// ChaosArm is one arm's outcome.
type ChaosArm struct {
	Name string

	Captured uint64 // honeyfarm infections observed (cumulative)
	Detected uint64 // scan-detector flags

	BindingsCreated  uint64
	BindingsRecycled uint64
	BackendLost      uint64 // bindings stranded by the crash, recycled via the gateway
	SpawnFailures    uint64 // gateway-visible final failures
	GatewayRetries   uint64 // gateway-level spawn retries
	FarmRetries      uint64 // farm-level re-placements on other servers
	BindingsShed     uint64 // bindings refused during shed windows
	CrashKilledVMs   uint64 // VMs that died with the server

	FinalLiveVMs  int
	FinalBindings int
	// EventCount / EventHash fingerprint the gateway's forensic event
	// log; two runs with the same seed must produce identical values.
	EventCount int
	EventHash  uint64
}

// ChaosResult is the two-arm comparison plus the applied-fault record.
type ChaosResult struct {
	Table    *metrics.Table
	Baseline ChaosArm
	Faulted  ChaosArm
	// FaultLog is the injector's applied-fault sequence (faulted arm),
	// rendered for display and run-to-run comparison.
	FaultLog []string
}

// ConservationOK reports whether both arms kept the binding ledger
// balanced: every binding ever created is either still live or was
// recycled — none leaked, even across a server crash.
func (r ChaosResult) ConservationOK() bool {
	ok := func(a ChaosArm) bool {
		return a.BindingsCreated == uint64(a.FinalBindings)+a.BindingsRecycled
	}
	return ok(r.Baseline) && ok(r.Faulted)
}

// RunChaos runs the outbreak twice — intact and with a mid-run server
// crash — and tabulates the comparison.
func RunChaos(cfg ChaosConfig) ChaosResult {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Minute
	}

	res := ChaosResult{Table: metrics.NewTable(
		fmt.Sprintf("Chaos: outbreak with 1-of-%d server crash at t=%v (seed %d)",
			cfg.Servers, (cfg.Duration / 2).Truncate(time.Second), cfg.Seed),
		"arm", "captured", "detected", "bindings", "recycled", "backend_lost",
		"farm_retries", "shed", "spawn_failures", "crash_killed", "live_vms")}

	// One tracer spans both arms so span IDs stay globally unique in the
	// combined JSONL stream (FlushOpen drains all per-arm state between
	// arms, so reuse is safe).
	var tr *trace.Tracer
	if cfg.TraceOut != nil {
		tr = trace.New(trace.JSONL(cfg.TraceOut, nil))
	}

	res.Baseline = runChaosArm(cfg, tr, false, nil)
	res.Faulted = runChaosArm(cfg, tr, true, &res.FaultLog)
	for _, a := range []ChaosArm{res.Baseline, res.Faulted} {
		res.Table.AddRow(a.Name, a.Captured, a.Detected, a.BindingsCreated,
			a.BindingsRecycled, a.BackendLost, a.FarmRetries, a.BindingsShed,
			a.SpawnFailures, a.CrashKilledVMs, a.FinalLiveVMs)
	}
	return res
}

// runChaosArm runs one arm of the experiment.
func runChaosArm(cfg ChaosConfig, tr *trace.Tracer, faulted bool, faultLog *[]string) ChaosArm {
	k := sim.NewKernel(cfg.Seed)

	wcfg := worm.DefaultConfig()
	wcfg.Seed = cfg.Seed
	wcfg.InitialInfected = 500
	wcfg.ScanRate = 100
	wcfg.ExploitPayload = guest.WindowsXP().ExploitPayload(0)
	wcfg.MaxDeliverPerStep = 8
	e := worm.New(k, wcfg)

	fc := farm.DefaultConfig()
	fc.Servers = cfg.Servers
	// Servers sized so the intact farm absorbs the outbreak with little
	// headroom: losing one pushes the survivors into saturation, which
	// is what exercises the farm-full and shed paths.
	fc.HostConfig.MemoryBytes = 112 << 20
	fc.Image = farm.ImageSpec{Name: "winxp", NumPages: 8192, ResidentPages: 2048, DiskBlocks: 256, Seed: 42}
	f := farm.MustNew(k, fc)

	gc := gateway.DefaultConfig()
	gc.Space = wcfg.Telescope
	gc.Policy = gateway.PolicyReflectSource
	// Short lifetimes so demand plateaus instead of growing all run:
	// the steady-state population is what the crash has to displace.
	gc.IdleTimeout = 20 * time.Second
	gc.MaxLifetime = 40 * time.Second
	gc.SpawnRetryBudget = 1
	gc.ShedOnFull = 500 * time.Millisecond
	// Fingerprint the forensic log so two same-seed runs can be proven
	// identical without storing every event.
	var evCount int
	var evHash uint64 = 0xcbf29ce484222325
	gc.EventSink = func(ev gateway.Event) {
		evCount++
		for _, s := range []string{fmt.Sprintf("%.6f", ev.T), string(ev.Kind), ev.Addr, ev.Peer, ev.Detail} {
			for i := 0; i < len(s); i++ {
				evHash ^= uint64(s[i])
				evHash *= 0x100000001b3
			}
		}
	}
	gc.ExternalOut = func(_ sim.Time, pkt *netsim.Packet) { e.InjectLeak(pkt) }
	gc.Tracer = tr
	g := gateway.New(k, gc, f)
	f.SetGateway(g)
	f.SetTracer(tr)
	e.Cfg.Deliver = func(now sim.Time, pkt *netsim.Packet) { g.HandleInbound(now, pkt) }

	name := "baseline"
	var inj *fault.Injector
	if faulted {
		name = fmt.Sprintf("crash-server-%d", cfg.CrashServer)
		inj = fault.New(k, f, fault.Config{Script: []fault.Action{
			{
				At:       cfg.Duration / 2,
				Kind:     fault.KindCrash,
				Server:   cfg.CrashServer,
				Duration: cfg.Duration / 4,
			},
			// A flaky window right after the crash: 30% of clone
			// attempts fail transiently, so the farm's retry/re-place
			// machinery fires even when the survivors have room.
			{
				At:       cfg.Duration/2 + time.Second,
				Kind:     fault.KindCloneFail,
				Server:   -1,
				Prob:     0.3,
				Duration: 10 * time.Second,
			},
		}})
		inj.Start()
	}

	tr.Instant(k.Now(), "arm-start", trace.Attr{K: "arm", V: name})
	e.Start()
	k.RunUntil(sim.Start.Add(cfg.Duration))
	e.Stop()
	g.Close()
	tr.FlushOpen(k.Now())

	if inj != nil && faultLog != nil {
		for _, ev := range inj.Log() {
			*faultLog = append(*faultLog, ev.String())
		}
	}

	gs, fs := g.Stats(), f.Stats()
	var crashKilled uint64
	for _, h := range f.Hosts() {
		crashKilled += h.Stats().CrashKilledVMs
	}
	return ChaosArm{
		Name:             name,
		Captured:         fs.Infections,
		Detected:         gs.DetectedInfected,
		BindingsCreated:  gs.BindingsCreated,
		BindingsRecycled: gs.BindingsRecycled,
		BackendLost:      gs.BackendLost,
		SpawnFailures:    gs.SpawnFailures,
		GatewayRetries:   gs.SpawnRetries,
		FarmRetries:      fs.SpawnRetries,
		BindingsShed:     gs.BindingsShed,
		CrashKilledVMs:   crashKilled,
		FinalLiveVMs:     f.LiveVMs(),
		FinalBindings:    g.NumBindings(),
		EventCount:       evCount,
		EventHash:        evHash,
	}
}
