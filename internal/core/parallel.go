package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Experiment arms are embarrassingly parallel: each owns its own
// sim.Kernel (single-threaded, seeded), its own farm/gateway/worm state,
// and reads only immutable shared inputs (telescope traces, arm specs).
// ForEach fans such arms across goroutines; the Run* sweeps write each
// arm's result into a pre-sized slot and assemble tables only after all
// arms finish, in input order — so the output is byte-identical to the
// sequential path and the parallelism setting can never change a result,
// only the wall-clock. The same-output regression test in
// parallel_test.go holds this to account.

// parallelism is the worker cap for ForEach; 0 means GOMAXPROCS.
var parallelism atomic.Int64

// SetParallelism caps the number of worker goroutines experiment sweeps
// use (cmd/benchtab's -parallel flag). n <= 0 restores the default,
// GOMAXPROCS. Safe to call concurrently; 1 forces sequential execution.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the effective worker count.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(0) … fn(n-1), each exactly once, across up to
// Parallelism() goroutines, and returns when all have finished. fn must
// not touch another index's state; callers write results into a
// pre-sized slice at their own index. Iteration order is unspecified —
// any ordering requirement belongs in the caller's merge step. A panic
// in fn is re-raised here after the remaining indices complete.
func ForEach(n int, fn func(i int)) {
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	type capturedPanic struct{ val any }
	var next atomic.Int64
	var panicVal atomic.Value
	var wg sync.WaitGroup
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicVal.CompareAndSwap(nil, capturedPanic{r})
			}
		}()
		fn(i)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	if r := panicVal.Load(); r != nil {
		panic(r.(capturedPanic).val)
	}
}
