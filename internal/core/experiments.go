// Package core implements the paper's experiments (E1–E8 in DESIGN.md)
// as reusable scenarios over the substrates. cmd/benchtab prints their
// tables; the repository-root benchmarks wrap them in testing.B; the
// examples demonstrate slices of them through the public API.
//
// Each Run* function is deterministic given its parameters and returns
// metrics tables/series shaped like the corresponding paper artifact.
package core

import (
	"time"

	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
	"potemkin/internal/vmm"
)

// E1Result is the flash-cloning latency breakdown.
type E1Result struct {
	Table *metrics.Table
	// CloneMeanMs and BootMeanMs summarize the headline comparison.
	CloneMeanMs float64
	BootMeanMs  float64
}

// RunE1 measures the modeled per-step flash-clone latency over `clones`
// clones, against the full-boot baseline (Table E1).
func RunE1(seed uint64, clones int) E1Result {
	k := sim.NewKernel(seed)
	cfg := vmm.DefaultHostConfig("e1")
	cfg.MemoryBytes = 64 << 30
	h := vmm.NewHost(k, cfg)
	img := farm.DefaultImage()
	h.RegisterImage(img.Name, img.NumPages, img.ResidentPages, img.DiskBlocks, img.Seed)

	for i := 0; i < clones; i++ {
		vm, err := h.FlashClone(img.Name, netsim.Addr(i+1), nil)
		if err != nil {
			panic(err)
		}
		k.Run()
		h.Destroy(vm.ID)
	}
	var boot metrics.Histogram
	for i := 0; i < clones; i++ {
		vm, err := h.FullBoot(img.Name, netsim.Addr(i+1), nil)
		if err != nil {
			panic(err)
		}
		start := k.Now()
		k.Run()
		boot.Observe(float64(k.Now().Sub(start)) / float64(time.Millisecond))
		h.Destroy(vm.ID)
	}

	tab := metrics.NewTable(
		"E1: Flash-clone latency breakdown (modeled ms, n="+itoa(clones)+")",
		"step", "mean_ms", "p50_ms", "p95_ms", "share_pct")
	var total float64
	for s := vmm.CloneStep(0); s < vmm.NumCloneSteps; s++ {
		total += h.StepLatency[s].Mean()
	}
	for s := vmm.CloneStep(0); s < vmm.NumCloneSteps; s++ {
		hist := &h.StepLatency[s]
		tab.AddRow(s.String(), hist.Mean(), hist.Quantile(0.5), hist.Quantile(0.95),
			100*hist.Mean()/total)
	}
	tab.AddRow("TOTAL flash clone", h.CloneLatency.Mean(), h.CloneLatency.Quantile(0.5),
		h.CloneLatency.Quantile(0.95), 100.0)
	tab.AddRow("BASELINE full boot", boot.Mean(), boot.Quantile(0.5), boot.Quantile(0.95), "")
	tab.AddRow("speedup (x)", boot.Mean()/h.CloneLatency.Mean(), "", "", "")
	return E1Result{Table: tab, CloneMeanMs: h.CloneLatency.Mean(), BootMeanMs: boot.Mean()}
}

// E2Mode selects the memory-sharing configuration under test.
type E2Mode int

// E2 ablation arms.
const (
	E2Delta        E2Mode = iota // CoW sharing of image pages (the paper's mechanism)
	E2DeltaContent               // + inline content sharing of private pages
	E2DeltaKSM                   // + periodic share passes over diverged pages
	E2FullCopy                   // no sharing: full-boot every VM
	numE2Modes
)

// String names the mode.
func (m E2Mode) String() string {
	switch m {
	case E2Delta:
		return "delta"
	case E2DeltaContent:
		return "delta+content"
	case E2DeltaKSM:
		return "delta+ksm"
	case E2FullCopy:
		return "full-copy"
	default:
		return "unknown"
	}
}

// E2Result holds the delta-virtualization memory experiment outputs.
type E2Result struct {
	// Footprint: per-VM incremental memory (MiB) over time, one series
	// per mode.
	Footprint *metrics.Table
	// Density: VMs admitted before a server of each size rejects.
	Density *metrics.Table
	// MeanFootprintMB is the measured steady-state per-VM cost under
	// E2Delta, used by E7's provisioning arithmetic.
	MeanFootprintMB float64
}

// RunE2 measures per-VM memory growth under a realistic guest workload
// for each sharing mode, then fills servers to rejection (Figure/Table
// E2).
func RunE2(seed uint64, vms int, dur time.Duration) E2Result {
	img := farm.DefaultImage()
	foot := metrics.NewTable(
		"E2: Per-VM incremental memory under guest workload (MiB)",
		"t_seconds", "delta", "delta+content", "delta+ksm", "full-copy")

	type sample struct{ perVM [numE2Modes]float64 }
	steps := int(dur / (10 * time.Second))
	if steps < 1 {
		steps = 1
	}
	samples := make([]sample, steps+1)
	var meanDelta float64

	for _, mode := range []E2Mode{E2Delta, E2DeltaContent, E2DeltaKSM, E2FullCopy} {
		k := sim.NewKernel(seed)
		cfg := vmm.DefaultHostConfig("e2")
		cfg.MemoryBytes = 1 << 40 // measure footprint, not admission
		cfg.ShareContent = mode == E2DeltaContent
		h := vmm.NewHost(k, cfg)
		h.RegisterImage(img.Name, img.NumPages, img.ResidentPages, img.DiskBlocks, img.Seed)
		if mode == E2DeltaKSM {
			defer h.StartSharePasses(20 * time.Second).Stop()
		}

		baseline := h.Store().ModeledBytes()
		var instances []*guest.Instance
		profile := guest.WindowsXP()
		for i := 0; i < vms; i++ {
			var vm *vmm.VM
			var err error
			if mode == E2FullCopy {
				vm, err = h.FullBoot(img.Name, netsim.Addr(i+1), nil)
			} else {
				vm, err = h.FlashClone(img.Name, netsim.Addr(i+1), nil)
			}
			if err != nil {
				panic(err)
			}
			in := guest.New(k, vm, profile, func(*netsim.Packet) {}, nil, guest.Hooks{})
			instances = append(instances, in)
		}
		k.RunFor(time.Second) // clones complete
		for _, in := range instances {
			in.Start()
		}
		for s := 0; s <= steps; s++ {
			perVM := float64(h.Store().ModeledBytes()-baseline) / float64(vms) / (1 << 20)
			samples[s].perVM[mode] = perVM
			if s < steps {
				k.RunFor(10 * time.Second)
			}
		}
		if mode == E2Delta {
			meanDelta = samples[steps].perVM[mode]
		}
		for _, in := range instances {
			in.Stop()
		}
	}
	for s := 0; s <= steps; s++ {
		foot.AddRow(float64(s*10), samples[s].perVM[E2Delta], samples[s].perVM[E2DeltaContent],
			samples[s].perVM[E2DeltaKSM], samples[s].perVM[E2FullCopy])
	}

	density := metrics.NewTable(
		"E2b: VMs admitted before server rejection (after "+dur.String()+" warmup workload)",
		"mode", "server_2GiB", "server_16GiB")
	for _, mode := range []E2Mode{E2Delta, E2FullCopy} {
		row := []any{mode.String()}
		for _, memBytes := range []uint64{2 << 30, 16 << 30} {
			k := sim.NewKernel(seed + 1)
			cfg := vmm.DefaultHostConfig("e2b")
			cfg.MemoryBytes = memBytes
			h := vmm.NewHost(k, cfg)
			h.RegisterImage(img.Name, img.NumPages, img.ResidentPages, img.DiskBlocks, img.Seed)
			admitted := 0
			for {
				var err error
				if mode == E2FullCopy {
					_, err = h.FullBoot(img.Name, netsim.Addr(admitted+1), nil)
				} else {
					_, err = h.FlashClone(img.Name, netsim.Addr(admitted+1), nil)
				}
				if err != nil {
					break
				}
				admitted++
				if admitted >= 100000 {
					break
				}
			}
			row = append(row, admitted)
		}
		density.AddRow(row...)
	}
	return E2Result{Footprint: foot, Density: density, MeanFootprintMB: meanDelta}
}

// E3Result holds the VM-multiplexing experiment outputs.
type E3Result struct {
	// Table: one row per recycling timeout.
	Table *metrics.Table
	// Series: live-VM count over time, one per timeout.
	Series []*metrics.Series
	// Peak live VMs for the shortest timeout (used by E7).
	PeakByTimeout map[time.Duration]int
}

// RunE3 replays a telescope trace against the gateway+farm under a
// sweep of idle-recycling timeouts and reports how many concurrent VMs
// cover the address space (Figure E3). A timeout of 0 means "never
// recycle".
func RunE3(seed uint64, trace []telescope.Record, space netsim.Prefix, timeouts []time.Duration) E3Result {
	res := E3Result{
		Table: metrics.NewTable(
			"E3: Live VMs required to cover "+space.String()+" vs recycling timeout",
			"idle_timeout", "median_live", "p95_live", "peak_live", "bindings_created", "recycled"),
		PeakByTimeout: make(map[time.Duration]int),
	}
	var traceEnd sim.Time
	if len(trace) > 0 {
		traceEnd = trace[len(trace)-1].At
	}
	type armResult struct {
		series *metrics.Series
		st     gateway.Stats
	}
	results := make([]armResult, len(timeouts))
	ForEach(len(timeouts), func(i int) {
		series, st := runE3Arm(seed, trace, traceEnd, space, timeouts[i], 0)
		results[i] = armResult{series, st}
	})
	for i, timeout := range timeouts {
		series, st := results[i].series, results[i].st
		res.Table.AddRow(labelTimeout(timeout), series.Quantile(0.5), series.Quantile(0.95),
			st.PeakBindings, st.BindingsCreated, st.BindingsRecycled)
		res.Series = append(res.Series, series.Downsample(120))
		res.PeakByTimeout[timeout] = st.PeakBindings
	}
	return res
}

// runE3Arm replays trace against one gateway configuration and returns
// the live-binding series plus final gateway stats.
func runE3Arm(seed uint64, trace []telescope.Record, traceEnd sim.Time,
	space netsim.Prefix, timeout time.Duration, scanFilter int) (*metrics.Series, gateway.Stats) {
	k := sim.NewKernel(seed)
	fc := farm.DefaultConfig()
	fc.Servers = 64 // measure demand, not capacity
	fc.Image = farm.ImageSpec{Name: "winxp", NumPages: 32768, ResidentPages: 8192, DiskBlocks: 1024, Seed: 42}
	fc.Profile = quietProfile()
	f := farm.MustNew(k, fc)
	gc := gateway.DefaultConfig()
	gc.Space = space
	gc.Policy = gateway.PolicyReflectSource
	gc.IdleTimeout = timeout
	gc.ScanFilter = scanFilter
	g := gateway.New(k, gc, f)
	f.SetGateway(g)

	series := &metrics.Series{Name: labelTimeout(timeout)}
	k.Every(time.Second, func(now sim.Time) {
		series.Add(now.Seconds(), float64(g.NumBindings()))
	})

	rp := &telescope.Replayer{K: k, Recs: trace, Emit: func(now sim.Time, pkt *netsim.Packet) {
		g.HandleInbound(now, pkt)
	}}
	rp.Start()
	k.RunUntil(traceEnd.Add(time.Second))
	g.Close()
	return series, g.Stats()
}

// RunE3ScanFilter is the E3 scan-filter ablation: same trace, fixed
// recycling timeout, varying the redundant-scan shed threshold. The
// filter should cut VM churn substantially at zero cost to coverage of
// *new* scanners.
func RunE3ScanFilter(seed uint64, trace []telescope.Record, space netsim.Prefix,
	timeout time.Duration, filters []int) *metrics.Table {
	tab := metrics.NewTable(
		"E3b: Scan-filter ablation (idle timeout "+labelTimeout(timeout)+")",
		"scan_filter", "peak_live", "bindings_created", "filtered_pkts", "delivered")
	var traceEnd sim.Time
	if len(trace) > 0 {
		traceEnd = trace[len(trace)-1].At
	}
	results := make([]gateway.Stats, len(filters))
	ForEach(len(filters), func(i int) {
		_, results[i] = runE3Arm(seed, trace, traceEnd, space, timeout, filters[i])
	})
	for i, filt := range filters {
		label := "off"
		if filt > 0 {
			label = itoa(filt)
		}
		st := results[i]
		tab.AddRow(label, st.PeakBindings, st.BindingsCreated, st.ScanFiltered, st.DeliveredToVM)
	}
	return tab
}

// quietProfile is the WindowsXP personality with the steady memory
// workload disabled: multiplexing experiments track binding counts over
// tens of thousands of VMs, where per-guest touch events would dominate
// simulation cost without changing the result.
func quietProfile() *guest.Profile {
	p := guest.WindowsXP()
	p.TouchRatePerSec = 0
	p.InitialBurstPages = 8
	return p
}

func labelTimeout(d time.Duration) string {
	if d == 0 {
		return "never"
	}
	return d.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
