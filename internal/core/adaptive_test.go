package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/netsim"
	"potemkin/internal/telescope"
)

// burstGapTrace builds a time-sorted telescope trace with two dense
// bursts separated by a long quiet gap — the schedule that makes
// adaptive lookahead widen across the gap and snap back when the second
// burst (and its cross-shard reflections) arrives.
func burstGapTrace(t *testing.T, seed uint64) []telescope.Record {
	t.Helper()
	gcfg := telescope.DefaultGenConfig()
	gcfg.Duration = 500 * time.Millisecond
	gcfg.Rate = 400
	gcfg.Seed = seed
	first, err := telescope.Generate(gcfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	gcfg.Seed = seed + 1
	second, err := telescope.Generate(gcfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	recs := make([]telescope.Record, 0, len(first)+len(second))
	recs = append(recs, first...)
	const gap = 5 * time.Second
	for _, r := range second {
		r.At = r.At.Add(500*time.Millisecond + gap)
		recs = append(recs, r)
	}
	return recs
}

// adaptiveRun is one engine run of the burst/gap/burst workload.
type adaptiveRun struct {
	gw     gateway.Stats
	fm     farm.Stats
	events []byte
	trace  []byte
	epochs uint64
}

func runBurstGapWorkload(t *testing.T, parallel bool, adaptive int, seed uint64) adaptiveRun {
	t.Helper()
	var ev, tr bytes.Buffer
	gc := gateway.DefaultConfig()
	gc.IdleTimeout = 2 * time.Second
	gc.ReflectionLimit = 64
	fc := farm.DefaultConfig()
	fc.Servers = 4
	fc.Profile = guest.MultiStageDNS("update.evil.example")
	eng, err := NewShardEngine(ShardEngineConfig{
		Shards:         4,
		Parallel:       parallel,
		AdaptiveEpochs: adaptive,
		Seed:           seed,
		Gateway:        gc,
		Farm:           fc,
		EventLog:       &ev,
		TraceOut:       &tr,
	})
	if err != nil {
		t.Fatalf("NewShardEngine: %v", err)
	}

	// Seed one exploit so infections generate cross-shard reflections
	// inside the second burst.
	pkt := netsim.TCPSyn(netsim.MustParseAddr("198.51.100.9"), netsim.MustParseAddr("10.5.7.31"),
		40000, fc.Profile.ScanDstPort, 1)
	pkt.Flags |= netsim.FlagPSH
	pkt.Payload = fc.Profile.ExploitPayload(0)
	eng.Inject(pkt)

	recs := burstGapTrace(t, seed)
	if _, err := eng.Replay(&telescope.SliceSource{Recs: recs}, nil, time.Millisecond); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	eng.RunFor(3 * time.Second)
	run := adaptiveRun{gw: eng.GatewayStats(), fm: eng.FarmStats()}
	if ep, ok := eng.Barrier().(interface{ Epochs() uint64 }); ok {
		run.epochs = ep.Epochs()
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	run.events = ev.Bytes()
	run.trace = tr.Bytes()
	return run
}

// TestShardEngineAdaptiveMatchesFixed is the engine-level determinism
// proof for adaptive lookahead: over a bursty replay with a long quiet
// gap, the adaptive engine must produce byte-identical event logs and
// traces to the fixed-epoch engine — in both sequential-oracle and
// parallel execution — while paying measurably fewer epoch barriers.
func TestShardEngineAdaptiveMatchesFixed(t *testing.T) {
	const seed = 23
	fixed := runBurstGapWorkload(t, false, 1, seed)
	if len(fixed.events) == 0 || len(fixed.trace) == 0 {
		t.Fatal("fixed run produced no output")
	}
	var adaptiveEpochs uint64
	for _, cfg := range []struct {
		parallel bool
		adaptive int
	}{{false, 0}, {true, 1}, {true, 0}} {
		got := runBurstGapWorkload(t, cfg.parallel, cfg.adaptive, seed)
		label := fmt.Sprintf("parallel=%v adaptive=%d", cfg.parallel, cfg.adaptive)
		if !bytes.Equal(fixed.events, got.events) {
			t.Errorf("%s: event log diverges from fixed oracle (%d vs %d bytes)",
				label, len(fixed.events), len(got.events))
		}
		if !bytes.Equal(fixed.trace, got.trace) {
			t.Errorf("%s: trace diverges from fixed oracle (%d vs %d bytes)",
				label, len(fixed.trace), len(got.trace))
		}
		if !reflect.DeepEqual(fixed.gw, got.gw) {
			t.Errorf("%s: gateway stats diverge:\nfixed: %+v\ngot:   %+v", label, fixed.gw, got.gw)
		}
		if !reflect.DeepEqual(fixed.fm, got.fm) {
			t.Errorf("%s: farm stats diverge:\nfixed: %+v\ngot:   %+v", label, fixed.fm, got.fm)
		}
		if cfg.adaptive == 0 {
			adaptiveEpochs = got.epochs
		}
	}
	// The 5 s gap spans 5000 fixed 1 ms epochs; adaptive (default cap
	// 64) must collapse most of them.
	if adaptiveEpochs == 0 || adaptiveEpochs >= fixed.epochs {
		t.Errorf("adaptive paid %d epochs, fixed %d — widening never engaged",
			adaptiveEpochs, fixed.epochs)
	}
	if fixed.gw.OutInternal == 0 {
		t.Error("no internal reflections — cross-shard snap-back not exercised")
	}
}
