package core

// ShardEngine runs one gateway shard plus its slice of farm servers per
// simulation domain — its own kernel, gateway, farm, and safe resolver
// — and advances the domains together under a sim.ParallelRunner with
// conservative epoch barriers. The only traffic that crosses domains is
// internal reflection to an address another shard owns, and that
// re-injection already pays the honeyfarm's minimum internal latency
// (one millisecond, the same delay the facade charges DNS answers), so
// the lookahead budget is free: a cross-shard packet sent at t is
// delivered at t+lookahead, which by construction lands at or after the
// next epoch barrier. DNS answers return to the querying VM (always
// shard-local) and recycler messages stay inside the domain that owns
// both the binding and the server, so neither needs the barrier.
//
// With identical configuration and seed, the engine produces
// byte-identical output (stats, event log, trace) whether the epochs
// run on goroutines or sequentially on one thread — see
// TestShardEngineParallelMatchesSequential and the determinism argument
// in DESIGN.md "Parallel execution".

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"potemkin/internal/dns"
	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
	"potemkin/internal/trace"
	"potemkin/internal/vmm"
)

// ShardEngineConfig parameterizes a ShardEngine.
type ShardEngineConfig struct {
	// Shards is the number of domains (>= 1). The monitored space is
	// partitioned by address index mod Shards, like gateway.Sharded.
	Shards int
	// Lookahead is the epoch length / minimum cross-shard latency.
	// Zero defaults to 1 ms, the facade's internal re-injection delay.
	Lookahead time.Duration
	// Parallel runs each domain's epoch on its own goroutine; false is
	// the single-threaded oracle that produces identical bytes.
	Parallel bool
	// Seed derives every domain's kernel seed deterministically.
	Seed uint64

	// Gateway is the per-shard gateway template. Space must be set;
	// EventSink, Tracer, Capture, ExternalOut, and OnDetected must be
	// left nil — the engine installs per-domain sinks (see EventLog,
	// TraceOut, Capture below) so output stays deterministic.
	Gateway gateway.Config
	// Farm is the farm template; Servers is the total across all
	// shards (split as evenly as possible, at least one per shard).
	Farm farm.Config

	// EventLog, when non-nil, receives the forensic event logs of all
	// shards: buffered per domain during the run, written in shard
	// order on Close, so the bytes are a pure function of the seed.
	EventLog io.Writer
	// TraceOut likewise receives the per-domain span traces in shard
	// order on Close.
	TraceOut io.Writer

	// Capture, when non-nil, supplies a per-shard capture sink (the
	// facade opens one capture directory per shard). Called once per
	// shard at construction.
	Capture func(shard int) (gateway.CaptureSink, error)

	// OnDetected, OnInfected, and OnEgress observe shard activity. In
	// parallel mode they are invoked from shard goroutines — they must
	// be safe for concurrent use and their invocation order across
	// shards is not deterministic (the simulation itself stays exactly
	// reproducible; only the interleaving of these observer calls
	// varies).
	OnDetected func(now sim.Time, addr netsim.Addr, distinctTargets int)
	OnInfected func(now sim.Time, in *guest.Instance)
	OnEgress   func(now sim.Time, pkt *netsim.Packet)
}

// ShardDomain is one shard's isolated simulation domain.
type ShardDomain struct {
	K        *sim.Kernel
	G        *gateway.Gateway
	F        *farm.Farm
	Resolver *dns.Resolver

	injected int // replay records delivered into this domain
}

// ShardEngine is the parallel (or sequential-oracle) shard executor.
type ShardEngine struct {
	cfg     ShardEngineConfig
	space   netsim.Prefix
	runner  *sim.ParallelRunner
	domains []*ShardDomain

	// Per-domain buffered sinks, flushed in shard order on Close.
	eventBufs []*bytes.Buffer
	traceBufs []*bytes.Buffer
	tracers   []*trace.Tracer
	closed    bool
}

// NewShardEngine builds the domains and their runner.
func NewShardEngine(cfg ShardEngineConfig) (*ShardEngine, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("core: shard engine needs at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = time.Millisecond
	}
	if cfg.Farm.Servers < cfg.Shards {
		return nil, fmt.Errorf("core: %d servers cannot cover %d shards (need one per shard)",
			cfg.Farm.Servers, cfg.Shards)
	}
	if cfg.Gateway.EventSink != nil || cfg.Gateway.Tracer != nil || cfg.Gateway.Capture != nil ||
		cfg.Gateway.ExternalOut != nil || cfg.Gateway.OnDetected != nil {
		return nil, errors.New("core: shard engine installs its own gateway sinks; leave them nil in the template")
	}
	e := &ShardEngine{cfg: cfg, space: cfg.Gateway.Space}
	n := cfg.Shards
	base, extra := cfg.Farm.Servers/n, cfg.Farm.Servers%n
	hostName := cfg.Farm.HostConfig.Name
	kernels := make([]*sim.Kernel, n)
	for i := 0; i < n; i++ {
		// Golden-ratio stride keeps per-domain seeds distinct and
		// deterministic; shard 0 keeps the caller's seed.
		k := sim.NewKernel(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15)
		kernels[i] = k

		fc := cfg.Farm
		fc.Servers = base
		if i < extra {
			fc.Servers++
		}
		// Suffix host names per shard so spans and logs stay unambiguous.
		fc.HostConfig.Name = fmt.Sprintf("%s-s%d", hostName, i)
		if cfg.OnInfected != nil {
			fc.OnInfected = cfg.OnInfected
		}
		f, err := farm.New(k, fc)
		if err != nil {
			return nil, err
		}

		gc := cfg.Gateway
		if cfg.EventLog != nil {
			buf := &bytes.Buffer{}
			e.eventBufs = append(e.eventBufs, buf)
			gc.EventSink = gateway.JSONLSink(buf, nil)
		}
		if cfg.TraceOut != nil {
			buf := &bytes.Buffer{}
			e.traceBufs = append(e.traceBufs, buf)
			tr := trace.New(trace.JSONL(buf, nil))
			e.tracers = append(e.tracers, tr)
			gc.Tracer = tr
			f.SetTracer(tr)
		}
		if cfg.Capture != nil {
			sink, err := cfg.Capture(i)
			if err != nil {
				return nil, err
			}
			gc.Capture = sink
		}
		gc.OnDetected = cfg.OnDetected

		d := &ShardDomain{K: k, F: f}
		d.Resolver = dns.NewResolver(gc.Space)
		resolverAddr := gc.Resolver
		gc.ExternalOut = func(now sim.Time, p *netsim.Packet) {
			if p.Proto == netsim.ProtoUDP && p.Dst == resolverAddr {
				if resp := d.Resolver.ServePacket(p); resp != nil {
					// The answer returns to the querying VM, which this
					// domain owns — shard-local, no barrier needed.
					d.K.After(time.Millisecond, func(then sim.Time) {
						d.G.HandleInbound(then, resp)
					})
				}
				return
			}
			if cfg.OnEgress != nil {
				cfg.OnEgress(now, p)
			}
		}

		g := gateway.New(k, gc, f)
		f.SetGateway(g)
		shard := i
		g.SetShardHooks(func(a netsim.Addr) bool {
			return e.Owner(a) == shard
		}, func(now sim.Time, pkt *netsim.Packet) {
			// Cross-shard internal traffic: deliver to the owner at the
			// next barrier, paying the minimum internal latency.
			dst := e.Owner(pkt.Dst)
			e.runner.Send(shard, dst, now.Add(e.cfg.Lookahead), func(then sim.Time) {
				e.domains[dst].G.HandleInbound(then, pkt)
			})
		})
		d.G = g
		e.domains = append(e.domains, d)
	}
	e.runner = sim.NewParallelRunner(kernels, cfg.Lookahead)
	e.runner.SetSequential(!cfg.Parallel)
	return e, nil
}

// Owner returns the shard index owning addr (addresses outside the
// monitored space route to shard 0, like gateway.Sharded, so they are
// counted somewhere deterministic).
func (e *ShardEngine) Owner(addr netsim.Addr) int {
	if !e.space.Contains(addr) {
		return 0
	}
	return int(e.space.Index(addr) % uint64(len(e.domains)))
}

// Domains exposes the per-shard simulation domains (tests, Internals).
func (e *ShardEngine) Domains() []*ShardDomain { return e.domains }

// Shards returns the domain count.
func (e *ShardEngine) Shards() int { return len(e.domains) }

// Space returns the monitored prefix.
func (e *ShardEngine) Space() netsim.Prefix { return e.space }

// Lookahead returns the epoch length.
func (e *ShardEngine) Lookahead() time.Duration { return e.cfg.Lookahead }

// SetSequential switches epoch execution to the single-threaded oracle
// (equivalence tests). Call only between runs.
func (e *ShardEngine) SetSequential(seq bool) { e.runner.SetSequential(seq) }

// Now returns the engine clock.
func (e *ShardEngine) Now() sim.Time { return e.runner.Now() }

// RunUntil advances every domain to deadline.
func (e *ShardEngine) RunUntil(deadline sim.Time) { e.runner.RunUntil(deadline) }

// RunFor advances every domain by d.
func (e *ShardEngine) RunFor(d time.Duration) { e.runner.RunFor(d) }

// Inject delivers pkt to its owning shard synchronously at the current
// time. Call only between runs (the facade's single-probe entry points).
func (e *ShardEngine) Inject(pkt *netsim.Packet) {
	d := e.domains[e.Owner(pkt.Dst)]
	d.G.HandleInbound(d.K.Now(), pkt)
}

// PrepareSnapshotImages runs the paper's image-preparation flow on every
// domain (each advances its kernel by roughly boot+warmup), then
// realigns the runner clock. Must run before traffic flows.
func (e *ShardEngine) PrepareSnapshotImages(name string, warmup time.Duration) error {
	for _, d := range e.domains {
		if err := d.F.PrepareSnapshotImages(name, warmup); err != nil {
			return err
		}
	}
	e.runner.Align()
	return nil
}

// Replay streams src into the engine: at each epoch barrier the records
// falling inside the upcoming epoch are scheduled on their owning
// domain's kernel (one record of lookahead, so multi-GB traces stream
// in bounded memory), then the epoch runs. halt, when non-nil, is
// consulted before each record; epilogue extends the run past the last
// record (the facade default is 1 ms). Returns packets injected and the
// first source error.
func (e *ShardEngine) Replay(src telescope.Source, halt func() bool, epilogue time.Duration) (int, error) {
	before := 0
	for _, d := range e.domains {
		before += d.injected
	}
	base := e.runner.Now()
	last := base
	var (
		pending telescope.Record
		have    bool
		done    bool
		readErr error
	)
	feed := func(start, end sim.Time) {
		for !done {
			if !have {
				if halt != nil && halt() {
					done = true
					return
				}
				err := src.Read(&pending)
				if err == io.EOF {
					done = true
					return
				}
				if err != nil {
					done, readErr = true, err
					return
				}
				pending.At += base
				have = true
			}
			at := pending.At
			if at < start {
				at = start // clamp out-of-order records, like StreamReplayer
			}
			if at >= end {
				pending.At = at // keep the clamp so time stays monotonic
				return          // belongs to a later epoch
			}
			rec := pending
			d := e.domains[e.Owner(rec.Dst)]
			d.K.At(at, func(now sim.Time) {
				d.injected++
				d.G.HandleInbound(now, rec.Packet())
			})
			if at > last {
				last = at
			}
			have = false
		}
	}
	e.runner.SetBeforeEpoch(feed)
	for !done {
		e.runner.RunFor(e.cfg.Lookahead)
	}
	e.runner.SetBeforeEpoch(nil)
	if target := last.Add(epilogue); target > e.runner.Now() {
		e.runner.RunUntil(target)
	}
	after := 0
	for _, d := range e.domains {
		after += d.injected
	}
	return after - before, readErr
}

// GatewayStats sums the per-domain gateway counters, mirroring
// gateway.Sharded.Stats.
func (e *ShardEngine) GatewayStats() gateway.Stats {
	var sum gateway.Stats
	for _, d := range e.domains {
		st := d.G.Stats()
		sum.InboundPackets += st.InboundPackets
		sum.InboundNonIP += st.InboundNonIP
		sum.InboundOutside += st.InboundOutside
		sum.BindingsCreated += st.BindingsCreated
		sum.BindingsRecycled += st.BindingsRecycled
		sum.SpawnFailures += st.SpawnFailures
		sum.SpawnRetries += st.SpawnRetries
		sum.BindingsShed += st.BindingsShed
		sum.BackendLost += st.BackendLost
		sum.PendingDropped += st.PendingDropped
		sum.DeliveredToVM += st.DeliveredToVM
		sum.OutAllowedOpen += st.OutAllowedOpen
		sum.OutToSource += st.OutToSource
		sum.OutDNSProxied += st.OutDNSProxied
		sum.OutInternal += st.OutInternal
		sum.OutReflected += st.OutReflected
		sum.OutDropped += st.OutDropped
		sum.OutReflectDenied += st.OutReflectDenied
		sum.DetectedInfected += st.DetectedInfected
		sum.ScanFiltered += st.ScanFiltered
		sum.OutRateLimited += st.OutRateLimited
		sum.OutProxied += st.OutProxied
		sum.ProxyReturns += st.ProxyReturns
		sum.PeakBindings += st.PeakBindings
		sum.ReflectionsActive += st.ReflectionsActive
		sum.PendingQueued += st.PendingQueued
	}
	return sum
}

// FarmStats sums the per-domain farm counters.
func (e *ShardEngine) FarmStats() farm.Stats {
	var sum farm.Stats
	for _, d := range e.domains {
		st := d.F.Stats()
		sum.Spawns += st.Spawns
		sum.SpawnFailures += st.SpawnFailures
		sum.SpawnRetries += st.SpawnRetries
		sum.Reclaims += st.Reclaims
		sum.Infections += st.Infections
		sum.CrashRecycles += st.CrashRecycles
		sum.LinkDrops += st.LinkDrops
		sum.PeakLiveVMs += st.PeakLiveVMs
	}
	return sum
}

// GuestTotals sums the per-guest counters across all live instances.
func (e *ShardEngine) GuestTotals() guest.Stats {
	var sum guest.Stats
	for _, d := range e.domains {
		st := d.F.GuestTotals()
		sum.PacketsIn += st.PacketsIn
		sum.RepliesOut += st.RepliesOut
		sum.ScansOut += st.ScansOut
		sum.PagesDirty += st.PagesDirty
		sum.ExploitHits += st.ExploitHits
		sum.ConnsAccepted += st.ConnsAccepted
		sum.ConnsEstablished += st.ConnsEstablished
		sum.ConnsClosed += st.ConnsClosed
		sum.ExploitsSent += st.ExploitsSent
		sum.AppResponses += st.AppResponses
		sum.DNSQueries += st.DNSQueries
		sum.DNSResponses += st.DNSResponses
		sum.Stage2Fetches += st.Stage2Fetches
	}
	return sum
}

// LiveVMs sums running VMs across domains.
func (e *ShardEngine) LiveVMs() int {
	n := 0
	for _, d := range e.domains {
		n += d.F.LiveVMs()
	}
	return n
}

// InfectedVMs sums compromised live guests across domains.
func (e *ShardEngine) InfectedVMs() int {
	n := 0
	for _, d := range e.domains {
		n += d.F.InfectedVMs()
	}
	return n
}

// MemoryInUse sums modeled memory across all servers of all domains.
func (e *ShardEngine) MemoryInUse() uint64 {
	var b uint64
	for _, d := range e.domains {
		b += d.F.MemoryInUse()
	}
	return b
}

// NumBindings sums live bindings across domains.
func (e *ShardEngine) NumBindings() int {
	n := 0
	for _, d := range e.domains {
		n += d.G.NumBindings()
	}
	return n
}

// DNSQueries sums the lookups served by every domain's safe resolver.
func (e *ShardEngine) DNSQueries() uint64 {
	var n uint64
	for _, d := range e.domains {
		n += d.Resolver.Queries
	}
	return n
}

// Hosts returns every server across domains, in shard order.
func (e *ShardEngine) Hosts() []*vmm.VMHost {
	var hs []*vmm.VMHost
	for _, d := range e.domains {
		hs = append(hs, d.F.Hosts()...)
	}
	return hs
}

// CloneLatency merges the per-host clone-latency histograms.
func (e *ShardEngine) CloneLatency() metrics.Histogram {
	var clone metrics.Histogram
	for _, h := range e.Hosts() {
		clone.Merge(&h.CloneLatency)
	}
	return clone
}

// VMAt returns the live VM bound to addr, or nil.
func (e *ShardEngine) VMAt(addr netsim.Addr) *vmm.VM {
	return e.domains[e.Owner(addr)].F.VMAt(addr)
}

// Profile returns the guest personality the farms run.
func (e *ShardEngine) Profile() *guest.Profile { return e.cfg.Farm.Profile }

// RecycleAll destroys every binding on every domain, in shard order.
func (e *ShardEngine) RecycleAll() {
	for _, d := range e.domains {
		d.G.RecycleAll(d.K.Now())
	}
}

// Close stops the domains' background work, finishes open spans, and
// writes the buffered per-domain event logs and traces to the
// configured writers in shard order. Idempotent.
func (e *ShardEngine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	var errs []error
	for _, d := range e.domains {
		d.G.Close()
	}
	for i, tr := range e.tracers {
		tr.FlushOpen(e.domains[i].K.Now())
	}
	for _, buf := range e.eventBufs {
		if _, err := e.cfg.EventLog.Write(buf.Bytes()); err != nil {
			errs = append(errs, err)
		}
	}
	for _, buf := range e.traceBufs {
		if _, err := e.cfg.TraceOut.Write(buf.Bytes()); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
