package core

// ShardEngine runs one gateway shard plus its slice of farm servers per
// simulation domain — its own kernel, gateway, farm, and safe resolver
// — and advances the domains together under a sim.ParallelRunner with
// conservative epoch barriers. The only traffic that crosses domains is
// internal reflection to an address another shard owns, and that
// re-injection already pays the honeyfarm's minimum internal latency
// (one millisecond, the same delay the facade charges DNS answers), so
// the lookahead budget is free: a cross-shard packet sent at t is
// delivered at t+lookahead, which by construction lands at or after the
// next epoch barrier. DNS answers return to the querying VM (always
// shard-local) and recycler messages stay inside the domain that owns
// both the binding and the server, so neither needs the barrier.
//
// With identical configuration and seed, the engine produces
// byte-identical output (stats, event log, trace) whether the epochs
// run on goroutines or sequentially on one thread — see
// TestShardEngineParallelMatchesSequential and the determinism argument
// in DESIGN.md "Parallel execution".
//
// Domain construction is factored out as NewShardDomain so that
// internal/cluster workers can build exactly the domains they own (same
// seeds, same sinks, same farm split) in a separate process, with
// cross-shard traffic routed through the coordinator instead of the
// in-process runner — see DESIGN.md "Cluster execution".

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"potemkin/internal/dns"
	"potemkin/internal/farm"
	"potemkin/internal/fault"
	"potemkin/internal/gateway"
	"potemkin/internal/guest"
	"potemkin/internal/mem"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
	"potemkin/internal/trace"
	"potemkin/internal/vmm"
)

// Initial capacities for per-domain buffered sinks: big enough that a
// typical benchmark run never regrows, small enough not to matter when
// the sink goes unused.
const (
	sinkArenaCap  = 64 << 10
	chromeRecsCap = 1024
)

// ShardEngineConfig parameterizes a ShardEngine.
type ShardEngineConfig struct {
	// Shards is the number of domains (>= 1). The monitored space is
	// partitioned by address index mod Shards, like gateway.Sharded.
	Shards int
	// Lookahead is the epoch length / minimum cross-shard latency.
	// Zero defaults to 1 ms, the facade's internal re-injection delay.
	Lookahead time.Duration
	// Parallel runs each domain's epoch on its own goroutine; false is
	// the single-threaded oracle that produces identical bytes.
	Parallel bool
	// AdaptiveEpochs caps how many lookahead cells a single epoch may
	// span when the runner widens the window against the pending
	// cross-shard and injection horizon (see sim.ParallelRunner
	// SetAdaptive). Zero defaults to 64; 1 pins the historical fixed
	// grid. For time-sorted replay sources — what telescope.Generate
	// and capture-order pcaps produce — every setting yields the same
	// bytes, so the default is safe for oracle comparisons.
	AdaptiveEpochs int
	// Seed derives every domain's kernel seed deterministically.
	Seed uint64

	// Gateway is the per-shard gateway template. Space must be set;
	// EventSink, Tracer, Capture, ExternalOut, and OnDetected must be
	// left nil — the engine installs per-domain sinks (see EventLog,
	// TraceOut, Capture below) so output stays deterministic.
	Gateway gateway.Config
	// Farm is the farm template; Servers is the total across all
	// shards (split as evenly as possible, at least one per shard).
	Farm farm.Config

	// Fault, when non-nil, attaches a fault injector to every domain —
	// same script and rates each, every random draw from the domain's
	// own seeded "fault" stream — so the fault schedule is a pure
	// function of the seed in sequential, parallel, and cluster runs
	// alike. Script server indices address the domain's farm slice.
	// Arm the injectors with StartFaults after any snapshot warmup.
	Fault *fault.Config

	// EventLog, when non-nil, receives the forensic event logs of all
	// shards: buffered per domain during the run, written in shard
	// order on Close, so the bytes are a pure function of the seed.
	EventLog io.Writer
	// TraceOut likewise receives the per-domain span traces in shard
	// order on Close.
	TraceOut io.Writer
	// ChromeOut, when non-nil, receives the merged Chrome (Perfetto)
	// trace: per-domain span records are buffered during the run and
	// streamed through one ChromeWriter in shard order on Close, with
	// trace IDs shard-tagged so rows from different domains never
	// collide. Byte-identical between parallel and sequential runs of
	// the same seed, like EventLog and TraceOut.
	ChromeOut io.Writer

	// Metrics, when non-nil, is the shared live-telemetry registry
	// plumbed into every domain's gateway, farm, and VMM hosts (plus
	// the engine's epoch profiler). One registry serves all shards: the
	// instruments are atomic and commutative, so concurrent domains
	// cannot perturb the exposed values.
	Metrics *metrics.Registry
	// EpochLog, when non-nil, receives the JSONL epoch timeline (one
	// metrics.EpochSample per line) for tracetool -epochs. Enables the
	// epoch profiler even without Metrics. Wall-clock timings are
	// observability-only — they never feed back into sim state.
	EpochLog io.Writer

	// Capture, when non-nil, supplies a per-shard capture sink (the
	// facade opens one capture directory per shard). Called once per
	// shard at construction.
	Capture func(shard int) (gateway.CaptureSink, error)

	// OnDetected, OnInfected, and OnEgress observe shard activity. In
	// parallel mode they are invoked from shard goroutines — they must
	// be safe for concurrent use and their invocation order across
	// shards is not deterministic (the simulation itself stays exactly
	// reproducible; only the interleaving of these observer calls
	// varies).
	OnDetected func(now sim.Time, addr netsim.Addr, distinctTargets int)
	OnInfected func(now sim.Time, in *guest.Instance)
	OnEgress   func(now sim.Time, pkt *netsim.Packet)
}

// normalized returns cfg with defaults applied.
func (cfg ShardEngineConfig) normalized() ShardEngineConfig {
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = time.Millisecond
	}
	if cfg.AdaptiveEpochs == 0 {
		cfg.AdaptiveEpochs = 64
	}
	return cfg
}

// Validate reports every structural problem with the config.
func (cfg ShardEngineConfig) Validate() error {
	var errs []error
	if cfg.Shards < 1 {
		errs = append(errs, fmt.Errorf("core: shard engine needs at least 1 shard, got %d", cfg.Shards))
	}
	if cfg.Shards >= 1 && cfg.Farm.Servers < cfg.Shards {
		errs = append(errs, fmt.Errorf("core: %d servers cannot cover %d shards (need one per shard)",
			cfg.Farm.Servers, cfg.Shards))
	}
	if cfg.Gateway.EventSink != nil || cfg.Gateway.Tracer != nil || cfg.Gateway.Capture != nil ||
		cfg.Gateway.ExternalOut != nil || cfg.Gateway.OnDetected != nil {
		errs = append(errs, errors.New("core: shard engine installs its own gateway sinks; leave them nil in the template"))
	}
	return errors.Join(errs...)
}

// OwnerOf maps addr onto its owning shard: addresses in space partition
// by index mod shards, addresses outside route to shard 0 (like
// gateway.Sharded, so they are counted somewhere deterministic). The
// cluster coordinator and every worker use this same function, which is
// what makes remote routing agree with the in-process engine.
func OwnerOf(space netsim.Prefix, shards int, addr netsim.Addr) int {
	if !space.Contains(addr) {
		return 0
	}
	return int(space.Index(addr) % uint64(shards))
}

// CrossSend delivers a cross-shard packet emitted by a domain at now,
// destined for shard dst. The in-process engine routes it through the
// parallel runner's barrier; a cluster worker serializes it into the
// epoch outbox for the coordinator to exchange.
type CrossSend func(now sim.Time, dst int, pkt *netsim.Packet)

// ShardDomain is one shard's isolated simulation domain.
type ShardDomain struct {
	Index    int
	K        *sim.Kernel
	G        *gateway.Gateway
	F        *farm.Farm
	Resolver *dns.Resolver
	// Fault is the domain's injector (nil unless the config asks for
	// one); it draws only from this domain's seeded stream.
	Fault *fault.Injector

	// EventBuf and TraceBuf hold the domain's buffered forensic event
	// log and span trace (nil when the config does not collect them).
	// They are grow-once arenas appended by this domain only and
	// flushed in shard order — by ShardEngine.Close locally, or by the
	// cluster coordinator after fetching them off workers.
	EventBuf *mem.Arena
	TraceBuf *mem.Arena
	// ChromeRecs buffers the domain's span records for the merged
	// Chrome export (only when the config sets ChromeOut). Appended
	// solely by this domain's epoch goroutine; the barrier orders those
	// appends before the shard-order flush reads them.
	ChromeRecs []trace.Record
	tracer     *trace.Tracer
}

// NewShardDomain builds domain i of cfg.Shards exactly as the engine
// does: derived seed, even farm split, per-shard host names, buffered
// event/trace sinks, shard-local safe resolver. cross receives every
// packet the domain emits for an address another shard owns. The caller
// (engine or cluster worker) owns epoch advancement of the domain's
// kernel.
func NewShardDomain(cfg ShardEngineConfig, i int, cross CrossSend) (*ShardDomain, error) {
	cfg = cfg.normalized()
	n := cfg.Shards
	// Golden-ratio stride keeps per-domain seeds distinct and
	// deterministic; shard 0 keeps the caller's seed.
	k := sim.NewKernel(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15)

	base, extra := cfg.Farm.Servers/n, cfg.Farm.Servers%n
	fc := cfg.Farm
	fc.Servers = base
	if i < extra {
		fc.Servers++
	}
	// Suffix host names per shard so spans and logs stay unambiguous.
	fc.HostConfig.Name = fmt.Sprintf("%s-s%d", cfg.Farm.HostConfig.Name, i)
	fc.Metrics = cfg.Metrics
	if cfg.OnInfected != nil {
		fc.OnInfected = cfg.OnInfected
	}
	f, err := farm.New(k, fc)
	if err != nil {
		return nil, err
	}

	d := &ShardDomain{Index: i, K: k, F: f}
	gc := cfg.Gateway
	gc.Metrics = cfg.Metrics
	if cfg.EventLog != nil {
		d.EventBuf = mem.NewArena(sinkArenaCap)
		gc.EventSink = gateway.ArenaSink(d.EventBuf)
	}
	if cfg.TraceOut != nil || cfg.ChromeOut != nil {
		var sinks []trace.Sink
		if cfg.TraceOut != nil {
			d.TraceBuf = mem.NewArena(sinkArenaCap)
			sinks = append(sinks, trace.JSONL(d.TraceBuf, nil))
		}
		if cfg.ChromeOut != nil {
			d.ChromeRecs = make([]trace.Record, 0, chromeRecsCap)
			sinks = append(sinks, func(rec trace.Record) {
				d.ChromeRecs = append(d.ChromeRecs, rec)
			})
		}
		d.tracer = trace.New(sinks...)
		gc.Tracer = d.tracer
		f.SetTracer(d.tracer)
	}
	if cfg.Capture != nil {
		sink, err := cfg.Capture(i)
		if err != nil {
			return nil, err
		}
		gc.Capture = sink
	}
	gc.OnDetected = cfg.OnDetected

	d.Resolver = dns.NewResolver(gc.Space)
	resolverAddr := gc.Resolver
	gc.ExternalOut = func(now sim.Time, p *netsim.Packet) {
		if p.Proto == netsim.ProtoUDP && p.Dst == resolverAddr {
			if resp := d.Resolver.ServePacket(p); resp != nil {
				// The answer returns to the querying VM, which this
				// domain owns — shard-local, no barrier needed.
				d.K.After(time.Millisecond, func(then sim.Time) {
					d.G.HandleInbound(then, resp)
				})
			}
			return
		}
		if cfg.OnEgress != nil {
			cfg.OnEgress(now, p)
		}
	}

	g := gateway.New(k, gc, f)
	f.SetGateway(g)
	space := gc.Space
	g.SetShardHooks(func(a netsim.Addr) bool {
		return OwnerOf(space, n, a) == i
	}, func(now sim.Time, pkt *netsim.Packet) {
		cross(now, OwnerOf(space, n, pkt.Dst), pkt)
	})
	d.G = g

	if cfg.Fault != nil {
		d.Fault = fault.New(k, f, *cfg.Fault)
	}
	return d, nil
}

// Close stops the domain's background work and finishes open spans.
func (d *ShardDomain) Close() {
	d.G.Close()
	if d.tracer != nil {
		d.tracer.FlushOpen(d.K.Now())
	}
}

// ShardEngine is the parallel (or sequential-oracle) shard executor.
type ShardEngine struct {
	cfg     ShardEngineConfig
	space   netsim.Prefix
	runner  *sim.ParallelRunner
	domains []*ShardDomain
	prof    *metrics.EpochProfiler
	envPool sync.Pool // of *crossEnv
	closed  bool

	// epochIngress counts records Replay scheduled since the last epoch
	// observation. Incremented in the pre-epoch hook and read/reset in
	// the epoch observer — both run on the runner's driver goroutine, so
	// no atomics are needed.
	epochIngress int
}

// crossEnv is a pooled cross-shard delivery envelope. Its fn closure is
// bound once at pool construction and captures only the envelope, so
// routing a cross-shard packet allocates nothing on the steady-state
// path: the envelope is checked out at Send, rides the runner's ring to
// the destination kernel, and returns itself to the pool the moment its
// payload has been copied out — before the gateway call, so a reflected
// re-send inside HandleInbound can reuse it immediately.
type crossEnv struct {
	e   *ShardEngine
	dst int
	pkt *netsim.Packet
	fn  sim.Event
}

// NewShardEngine builds the domains and their runner.
func NewShardEngine(cfg ShardEngineConfig) (*ShardEngine, error) {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &ShardEngine{cfg: cfg, space: cfg.Gateway.Space}
	e.envPool.New = func() any {
		env := &crossEnv{e: e}
		env.fn = func(then sim.Time) {
			d := env.e.domains[env.dst]
			pkt := env.pkt
			env.pkt = nil
			env.e.envPool.Put(env)
			d.G.HandleInbound(then, pkt)
		}
		return env
	}
	kernels := make([]*sim.Kernel, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		src := i
		// Cross-shard internal traffic: deliver to the owner at the
		// next barrier, paying the minimum internal latency. The
		// envelope fires only during runs, after e.runner and e.domains
		// are fully wired.
		d, err := NewShardDomain(cfg, i, func(now sim.Time, dst int, pkt *netsim.Packet) {
			env := e.envPool.Get().(*crossEnv)
			env.dst, env.pkt = dst, pkt
			e.runner.Send(src, dst, now.Add(e.cfg.Lookahead), env.fn)
		})
		if err != nil {
			return nil, err
		}
		e.domains = append(e.domains, d)
		kernels[i] = d.K
	}
	e.runner = sim.NewParallelRunner(kernels, cfg.Lookahead)
	e.runner.SetSequential(!cfg.Parallel)
	e.runner.SetAdaptive(cfg.AdaptiveEpochs)
	if cfg.Metrics != nil || cfg.EpochLog != nil {
		e.prof = metrics.NewEpochProfiler(cfg.Metrics, cfg.EpochLog)
		e.runner.SetEpochObserver(func(s sim.EpochStats) {
			ingress := e.epochIngress
			e.epochIngress = 0
			e.prof.Record(metrics.EpochSample{
				Seq:           s.Seq,
				StartNS:       int64(s.Start),
				EndNS:         int64(s.End),
				WallNS:        s.WallNS,
				ExchangeNS:    s.ExchangeNS,
				ExchangeMsgs:  s.ExchangeMsgs,
				AdvanceNS:     s.AdvanceNS,
				BarrierWaitNS: s.BarrierWaitNS,
				SlowestShard:  s.SlowestShard,
				IngressFrames: ingress,
			})
		})
	}
	return e, nil
}

// Profiler returns the engine's epoch profiler (nil unless the config
// enabled Metrics or EpochLog).
func (e *ShardEngine) Profiler() *metrics.EpochProfiler { return e.prof }

// Owner returns the shard index owning addr.
func (e *ShardEngine) Owner(addr netsim.Addr) int {
	return OwnerOf(e.space, len(e.domains), addr)
}

// Domains exposes the per-shard simulation domains (tests, Internals).
func (e *ShardEngine) Domains() []*ShardDomain { return e.domains }

// Shards returns the domain count.
func (e *ShardEngine) Shards() int { return len(e.domains) }

// Space returns the monitored prefix.
func (e *ShardEngine) Space() netsim.Prefix { return e.space }

// Lookahead returns the epoch length.
func (e *ShardEngine) Lookahead() time.Duration { return e.cfg.Lookahead }

// SetSequential switches epoch execution to the single-threaded oracle
// (equivalence tests). Call only between runs.
func (e *ShardEngine) SetSequential(seq bool) { e.runner.SetSequential(seq) }

// Now returns the engine clock.
func (e *ShardEngine) Now() sim.Time { return e.runner.Now() }

// RunUntil advances every domain to deadline.
func (e *ShardEngine) RunUntil(deadline sim.Time) { e.runner.RunUntil(deadline) }

// RunFor advances every domain by d.
func (e *ShardEngine) RunFor(d time.Duration) { e.runner.RunFor(d) }

// Barrier exposes the engine's epoch coordinator.
func (e *ShardEngine) Barrier() sim.Barrier { return e.runner }

// Inject delivers pkt to its owning shard synchronously at the current
// time. Call only between runs (the facade's single-probe entry points).
func (e *ShardEngine) Inject(pkt *netsim.Packet) {
	d := e.domains[e.Owner(pkt.Dst)]
	d.G.HandleInbound(d.K.Now(), pkt)
}

// InjectBarrier schedules pkt for delivery to its owning shard through
// the event queue at the current barrier clock — unlike Inject, which
// calls into the gateway synchronously. This is the exact delivery
// semantics the cluster coordinator gives injected packets (it can
// only act at barriers), so cross-mode byte comparisons seed exploits
// through this entry point. Call only between runs.
func (e *ShardEngine) InjectBarrier(pkt *netsim.Packet) {
	d := e.domains[e.Owner(pkt.Dst)]
	d.K.At(e.runner.Now(), func(now sim.Time) {
		d.G.HandleInbound(now, pkt)
	})
}

// PrepareSnapshotImages runs the paper's image-preparation flow on every
// domain (each advances its kernel by roughly boot+warmup), then
// realigns the runner clock. Must run before traffic flows.
func (e *ShardEngine) PrepareSnapshotImages(name string, warmup time.Duration) error {
	for _, d := range e.domains {
		if err := d.F.PrepareSnapshotImages(name, warmup); err != nil {
			return err
		}
	}
	e.runner.Align()
	return nil
}

// StartFaults arms every domain's fault injector (no-op without
// cfg.Fault). Call once, after PrepareSnapshotImages and before any
// traffic — the same point every execution mode uses — so the fault
// schedule stays a pure function of the seed.
func (e *ShardEngine) StartFaults() {
	for _, d := range e.domains {
		if d.Fault != nil {
			d.Fault.Start()
		}
	}
}

// FaultLog returns every applied fault across all domains, in shard
// order, one rendered event per line — the cross-mode comparison form.
func (e *ShardEngine) FaultLog() []string {
	var out []string
	for _, d := range e.domains {
		if d.Fault == nil {
			continue
		}
		for _, ev := range d.Fault.Log() {
			out = append(out, fmt.Sprintf("shard=%d %s", d.Index, ev))
		}
	}
	return out
}

// Replay streams src into the engine: at each epoch barrier the records
// falling inside the upcoming epoch are scheduled on their owning
// domain's kernel (one record of lookahead, so multi-GB traces stream
// in bounded memory), then the epoch runs. halt, when non-nil, is
// consulted before each record; epilogue extends the run past the last
// record (the facade default is 1 ms). Returns packets injected and the
// first source error.
func (e *ShardEngine) Replay(src telescope.Source, halt func() bool, epilogue time.Duration) (int, error) {
	return ReplayOver(e.runner, src, halt, epilogue, func(at sim.Time, rec telescope.Record) {
		e.epochIngress++
		d := e.domains[e.Owner(rec.Dst)]
		d.K.At(at, func(now sim.Time) {
			d.G.HandleInbound(now, rec.Packet())
		})
	})
}

// GatewayStats sums the per-domain gateway counters, mirroring
// gateway.Sharded.Stats.
func (e *ShardEngine) GatewayStats() gateway.Stats {
	var sum gateway.Stats
	for _, d := range e.domains {
		st := d.G.Stats()
		AddGatewayStats(&sum, &st)
	}
	return sum
}

// AddGatewayStats accumulates src into dst field-by-field (the shard
// engine and the cluster coordinator merge per-domain counters with the
// same function, so they cannot drift apart).
func AddGatewayStats(dst, src *gateway.Stats) {
	dst.InboundPackets += src.InboundPackets
	dst.InboundNonIP += src.InboundNonIP
	dst.InboundOutside += src.InboundOutside
	dst.BindingsCreated += src.BindingsCreated
	dst.BindingsRecycled += src.BindingsRecycled
	dst.SpawnFailures += src.SpawnFailures
	dst.SpawnRetries += src.SpawnRetries
	dst.BindingsShed += src.BindingsShed
	dst.BackendLost += src.BackendLost
	dst.PendingDropped += src.PendingDropped
	dst.DeliveredToVM += src.DeliveredToVM
	dst.OutAllowedOpen += src.OutAllowedOpen
	dst.OutToSource += src.OutToSource
	dst.OutDNSProxied += src.OutDNSProxied
	dst.OutInternal += src.OutInternal
	dst.OutReflected += src.OutReflected
	dst.OutDropped += src.OutDropped
	dst.OutReflectDenied += src.OutReflectDenied
	dst.DetectedInfected += src.DetectedInfected
	dst.ScanFiltered += src.ScanFiltered
	dst.OutRateLimited += src.OutRateLimited
	dst.OutProxied += src.OutProxied
	dst.ProxyReturns += src.ProxyReturns
	dst.PeakBindings += src.PeakBindings
	dst.ReflectionsActive += src.ReflectionsActive
	dst.PendingQueued += src.PendingQueued
}

// FarmStats sums the per-domain farm counters.
func (e *ShardEngine) FarmStats() farm.Stats {
	var sum farm.Stats
	for _, d := range e.domains {
		st := d.F.Stats()
		AddFarmStats(&sum, &st)
	}
	return sum
}

// AddFarmStats accumulates src into dst (see AddGatewayStats).
func AddFarmStats(dst, src *farm.Stats) {
	dst.Spawns += src.Spawns
	dst.SpawnFailures += src.SpawnFailures
	dst.SpawnRetries += src.SpawnRetries
	dst.Reclaims += src.Reclaims
	dst.Infections += src.Infections
	dst.CrashRecycles += src.CrashRecycles
	dst.LinkDrops += src.LinkDrops
	dst.PeakLiveVMs += src.PeakLiveVMs
}

// GuestTotals sums the per-guest counters across all live instances.
func (e *ShardEngine) GuestTotals() guest.Stats {
	var sum guest.Stats
	for _, d := range e.domains {
		st := d.F.GuestTotals()
		AddGuestStats(&sum, &st)
	}
	return sum
}

// AddGuestStats accumulates src into dst (see AddGatewayStats).
func AddGuestStats(dst, src *guest.Stats) {
	dst.PacketsIn += src.PacketsIn
	dst.RepliesOut += src.RepliesOut
	dst.ScansOut += src.ScansOut
	dst.PagesDirty += src.PagesDirty
	dst.ExploitHits += src.ExploitHits
	dst.ConnsAccepted += src.ConnsAccepted
	dst.ConnsEstablished += src.ConnsEstablished
	dst.ConnsClosed += src.ConnsClosed
	dst.ExploitsSent += src.ExploitsSent
	dst.AppResponses += src.AppResponses
	dst.DNSQueries += src.DNSQueries
	dst.DNSResponses += src.DNSResponses
	dst.Stage2Fetches += src.Stage2Fetches
	dst.CanariesOut += src.CanariesOut
	dst.BeaconsOut += src.BeaconsOut
	dst.Fingerprinted += src.Fingerprinted
}

// LiveVMs sums running VMs across domains.
func (e *ShardEngine) LiveVMs() int {
	n := 0
	for _, d := range e.domains {
		n += d.F.LiveVMs()
	}
	return n
}

// InfectedVMs sums compromised live guests across domains.
func (e *ShardEngine) InfectedVMs() int {
	n := 0
	for _, d := range e.domains {
		n += d.F.InfectedVMs()
	}
	return n
}

// MemoryInUse sums modeled memory across all servers of all domains.
func (e *ShardEngine) MemoryInUse() uint64 {
	var b uint64
	for _, d := range e.domains {
		b += d.F.MemoryInUse()
	}
	return b
}

// NumBindings sums live bindings across domains.
func (e *ShardEngine) NumBindings() int {
	n := 0
	for _, d := range e.domains {
		n += d.G.NumBindings()
	}
	return n
}

// DNSQueries sums the lookups served by every domain's safe resolver.
func (e *ShardEngine) DNSQueries() uint64 {
	var n uint64
	for _, d := range e.domains {
		n += d.Resolver.Queries
	}
	return n
}

// Hosts returns every server across domains, in shard order.
func (e *ShardEngine) Hosts() []*vmm.VMHost {
	var hs []*vmm.VMHost
	for _, d := range e.domains {
		hs = append(hs, d.F.Hosts()...)
	}
	return hs
}

// CloneLatency merges the per-host clone-latency histograms.
func (e *ShardEngine) CloneLatency() metrics.Histogram {
	var clone metrics.Histogram
	for _, h := range e.Hosts() {
		clone.Merge(&h.CloneLatency)
	}
	return clone
}

// VMAt returns the live VM bound to addr, or nil.
func (e *ShardEngine) VMAt(addr netsim.Addr) *vmm.VM {
	return e.domains[e.Owner(addr)].F.VMAt(addr)
}

// Profile returns the guest personality the farms run.
func (e *ShardEngine) Profile() *guest.Profile { return e.cfg.Farm.Profile }

// RecycleAll destroys every binding on every domain, in shard order.
func (e *ShardEngine) RecycleAll() {
	for _, d := range e.domains {
		d.G.RecycleAll(d.K.Now())
	}
}

// Close stops the domains' background work, finishes open spans, and
// writes the buffered per-domain event logs and traces to the
// configured writers in shard order. Idempotent.
func (e *ShardEngine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	flushT0 := time.Now()
	var errs []error
	e.runner.Close()
	for _, d := range e.domains {
		d.Close()
	}
	for _, d := range e.domains {
		if d.EventBuf != nil {
			if _, err := e.cfg.EventLog.Write(d.EventBuf.Bytes()); err != nil {
				errs = append(errs, err)
			}
		}
	}
	for _, d := range e.domains {
		if d.TraceBuf != nil {
			if _, err := e.cfg.TraceOut.Write(d.TraceBuf.Bytes()); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if e.cfg.ChromeOut != nil {
		if err := e.flushChrome(); err != nil {
			errs = append(errs, err)
		}
	}
	e.prof.RecordFlush(time.Since(flushT0).Nanoseconds())
	if err := e.prof.FlushTimeline(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// flushChrome streams the buffered per-domain span records through one
// ChromeWriter in shard order. Every domain's tracer numbers its traces
// from 1, so trace IDs are tagged with the shard index to keep one
// domain's timeline rows from colliding with another's — the tag is
// applied identically in parallel and sequential runs, preserving
// byte-for-byte equality.
func (e *ShardEngine) flushChrome() error {
	cw := trace.NewChromeWriter(e.cfg.ChromeOut)
	for _, d := range e.domains {
		tag := uint64(d.Index) << 48
		for _, rec := range d.ChromeRecs {
			rec.Trace |= tag
			cw.Write(rec)
		}
	}
	return cw.Close()
}
