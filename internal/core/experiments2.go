package core

import (
	"time"

	"potemkin/internal/farm"
	"potemkin/internal/gateway"
	"potemkin/internal/gre"
	"potemkin/internal/guest"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/telescope"
	"potemkin/internal/vmm"
	"potemkin/internal/worm"
)

// E4Workload prepares the gateway fast-path workload for throughput
// measurement: a gateway with pre-warmed bindings and a mixed batch of
// pre-marshalled GRE frames. The actual timing is done by testing.B
// (bench_test.go) or cmd/benchtab's wall-clock loop, both of which call
// Step in a tight loop.
type E4Workload struct {
	G      *gateway.Gateway
	K      *sim.Kernel
	Frames [][]byte
	next   int
}

// NewE4Workload builds the workload: warm bindings for `warm` addresses
// (so the measured path is lookup+deliver, not cloning), and a frame
// batch with hitRatio of frames addressed to warm bindings.
func NewE4Workload(seed uint64, warm, frames int, hitRatio float64) *E4Workload {
	k := sim.NewKernel(seed)
	fb := &nullBackend{k: k}
	cfg := gateway.DefaultConfig()
	cfg.IdleTimeout = 0
	g := gateway.New(k, cfg, fb)
	r := sim.NewRNG(seed)

	for i := 0; i < warm; i++ {
		g.HandleInbound(k.Now(), netsim.TCPSyn(netsim.Addr(0xc0000000+i), cfg.Space.Nth(uint64(i)), 1, 445, 1))
	}
	k.Run() // all bindings active

	w := &E4Workload{G: g, K: k}
	tun := gre.NewTunnel(netsim.MustParseAddr("1.1.1.1"), netsim.MustParseAddr("2.2.2.2"), 7)
	for i := 0; i < frames; i++ {
		var dstIdx uint64
		if r.Float64() < hitRatio {
			dstIdx = uint64(r.Intn(warm))
		} else {
			dstIdx = uint64(warm) + r.Uint64n(cfg.Space.Size()-uint64(warm))
		}
		inner := netsim.TCPSyn(netsim.Addr(r.Uint64n(1<<31)+1), cfg.Space.Nth(dstIdx),
			uint16(1024+r.Intn(60000)), 445, uint32(i))
		outer := tun.Wrap(inner)
		w.Frames = append(w.Frames, outer.Payload)
	}
	return w
}

// Step processes one frame; call in a timing loop.
func (w *E4Workload) Step() {
	w.G.HandleGREFrame(w.K.Now(), w.Frames[w.next])
	w.next++
	if w.next == len(w.Frames) {
		w.next = 0
	}
}

// nullBackend satisfies spawn requests instantly with inert VMs.
type nullBackend struct{ k *sim.Kernel }

type nullVM struct{}

func (nullVM) Deliver(sim.Time, *netsim.Packet) {}
func (nullVM) Destroy(sim.Time)                 {}

func (nb *nullBackend) RequestVM(_ sim.Time, _ netsim.Addr, _ gateway.SpawnHint, ready func(gateway.VMRef, error)) {
	nb.k.After(0, func(sim.Time) { ready(nullVM{}, nil) })
}

// E5Result holds the containment experiment outputs.
type E5Result struct {
	Table  *metrics.Table
	Curves []*metrics.Series // infected-over-time per arm
}

// E5Arm names one containment configuration under test.
type E5Arm struct {
	Name   string
	Policy gateway.Policy
	// NoHoneyfarm runs the pure epidemic (control).
	NoHoneyfarm bool
}

// StandardE5Arms is the sweep the containment figure uses.
func StandardE5Arms() []E5Arm {
	return []E5Arm{
		{Name: "no-honeyfarm", NoHoneyfarm: true},
		{Name: "open", Policy: gateway.PolicyOpen},
		{Name: "drop-all", Policy: gateway.PolicyDropAll},
		{Name: "reflect-source", Policy: gateway.PolicyReflectSource},
		{Name: "internal-reflect", Policy: gateway.PolicyInternalReflect},
	}
}

// RunE5 couples a worm epidemic to the honeyfarm under each containment
// policy and reports spread, leakage, and detection (Figure E5).
//
// The shape that must hold: an *open* honeyfarm leaks exploit traffic
// and measurably accelerates the epidemic over the no-honeyfarm
// control, while every containment policy tracks the control exactly
// (zero leak infections) — containment costs nothing in detection time.
func RunE5(seed uint64, arms []E5Arm, dur time.Duration) E5Result {
	res := E5Result{Table: metrics.NewTable(
		"E5: Worm spread vs containment policy ("+dur.String()+" epidemic)",
		"arm", "final_infected", "leaked_pkts", "leak_infections", "first_capture_s", "honeyfarm_infected")}

	results := make([]e5ArmResult, len(arms))
	ForEach(len(arms), func(i int) {
		results[i] = runE5Arm(seed, arms[i], dur)
	})
	for i, arm := range arms {
		r := results[i]
		res.Curves = append(res.Curves, r.curve)
		captureCell := any("n/a")
		if r.firstCapture >= 0 {
			captureCell = r.firstCapture
		} else if !arm.NoHoneyfarm {
			captureCell = "none"
		}
		res.Table.AddRow(arm.Name, r.st.Infected, r.leakedPkts, r.st.LeakInfections, captureCell, r.hfInfected)
	}
	return res
}

// e5ArmResult carries one containment arm's outputs to the merge step.
type e5ArmResult struct {
	st           worm.Stats
	curve        *metrics.Series
	leakedPkts   uint64
	firstCapture float64
	hfInfected   int
}

// runE5Arm couples one epidemic to one honeyfarm configuration. All
// state is arm-local, so arms run concurrently under ForEach.
func runE5Arm(seed uint64, arm E5Arm, dur time.Duration) e5ArmResult {
	k := sim.NewKernel(seed)
	wcfg := worm.DefaultConfig()
	wcfg.Seed = seed
	// A Blaster-scale outbreak already underway: hot enough that the
	// telescope sees it within seconds even on short runs.
	wcfg.InitialInfected = 500
	wcfg.ScanRate = 100
	wcfg.ExploitPayload = guest.WindowsXP().ExploitPayload(0)
	wcfg.MaxDeliverPerStep = 8

	var g *gateway.Gateway
	var f *farm.Farm
	var leakedPkts uint64
	firstCapture := -1.0

	e := worm.New(k, wcfg)

	if !arm.NoHoneyfarm {
		fc := farm.DefaultConfig()
		// A deliberately small farm: two 256 MiB servers bound the
		// honeypot population (≈500 VMs), which keeps long epidemics
		// tractable and exercises admission control the way a real
		// under-provisioned farm would.
		fc.Servers = 2
		fc.HostConfig.MemoryBytes = 256 << 20
		fc.Image = farm.ImageSpec{Name: "winxp", NumPages: 8192, ResidentPages: 2048, DiskBlocks: 256, Seed: 42}
		fc.Profile = guest.WindowsXP()
		fc.OnInfected = func(now sim.Time, in *guest.Instance) {
			if firstCapture < 0 {
				firstCapture = now.Seconds()
			}
		}
		f = farm.MustNew(k, fc)
		gc := gateway.DefaultConfig()
		gc.Space = wcfg.Telescope
		gc.Policy = arm.Policy
		gc.IdleTimeout = 60 * time.Second
		gc.MaxLifetime = 120 * time.Second // churn even busy (infected) VMs
		gc.ReflectionLimit = 256
		gc.ExternalOut = func(_ sim.Time, pkt *netsim.Packet) {
			leakedPkts++
			e.InjectLeak(pkt)
		}
		g = gateway.New(k, gc, f)
		f.SetGateway(g)
		e.Cfg.Deliver = func(now sim.Time, pkt *netsim.Packet) { g.HandleInbound(now, pkt) }
	}

	e.Start()
	k.RunUntil(sim.Start.Add(dur))
	e.Stop()
	if g != nil {
		g.Close()
	}

	curve := e.Curve.Downsample(120)
	curve.Name = arm.Name
	hfInfected := 0
	if f != nil {
		hfInfected = f.InfectedVMs()
	}
	return e5ArmResult{
		st:           e.Stats(),
		curve:        curve,
		leakedPkts:   leakedPkts,
		firstCapture: firstCapture,
		hfInfected:   hfInfected,
	}
}

// E6Result holds detection-time measurements.
type E6Result struct{ Table *metrics.Table }

// RunE6 measures time-to-first-capture as a function of monitored
// address-space size and worm scan rate (Figure E6). Detection time
// should scale inversely with both.
func RunE6(seed uint64, prefixBits []int, scanRates []float64, trials int) E6Result {
	tab := metrics.NewTable(
		"E6: Time to first telescope hit vs monitored space and scan rate (s, mean of "+itoa(trials)+" trials)",
		append([]string{"prefix"}, func() []string {
			var cols []string
			for _, r := range scanRates {
				cols = append(cols, "scan_"+ftoa(r)+"ps")
			}
			return cols
		}()...)...)

	// Flatten the bits × rate × trial nest so every kernel run — not
	// just every cell — fans out under ForEach.
	type e6Trial struct {
		bits  int
		rate  float64
		trial int
		hit   bool
		hitAt float64
	}
	var runs []e6Trial
	for _, bits := range prefixBits {
		for _, rate := range scanRates {
			for trial := 0; trial < trials; trial++ {
				runs = append(runs, e6Trial{bits: bits, rate: rate, trial: trial})
			}
		}
	}
	ForEach(len(runs), func(i int) {
		r := &runs[i]
		k := sim.NewKernel(seed + uint64(r.trial)*1000 + uint64(r.bits))
		cfg := worm.DefaultConfig()
		cfg.Seed = seed + uint64(r.trial)
		cfg.Telescope = netsim.Prefix{Base: netsim.MustParseAddr("10.0.0.0"), Bits: r.bits}
		cfg.InitialInfected = 10
		cfg.ScanRate = r.rate
		cfg.Susceptible = 1 << 20
		cfg.Deliver = nil
		e := worm.New(k, cfg)
		e.Start()
		k.RunUntil(sim.Start.Add(2 * time.Hour))
		e.Stop()
		if e.Stats().SeenTelescope {
			r.hit = true
			r.hitAt = e.Stats().FirstTelescopeHit.Seconds()
		}
	})
	next := 0
	for _, bits := range prefixBits {
		row := []any{"/" + itoa(bits)}
		for range scanRates {
			sum, n := 0.0, 0
			for trial := 0; trial < trials; trial++ {
				if r := runs[next]; r.hit {
					sum += r.hitAt
					n++
				}
				next++
			}
			if n == 0 {
				row = append(row, "none")
			} else {
				row = append(row, sum/float64(n))
			}
		}
		tab.AddRow(row...)
	}
	return E6Result{Table: tab}
}

// E7Result holds binding churn and provisioning outputs.
type E7Result struct{ Table *metrics.Table }

// RunE7 derives the provisioning table (Table E7) from an E3-style
// replay: for each recycling timeout, how many physical servers cover
// the space at the E2-measured per-VM footprint.
func RunE7(seed uint64, trace []telescope.Record, space netsim.Prefix,
	timeouts []time.Duration, perVMFootprintMB float64) E7Result {
	e3 := RunE3(seed, trace, space, timeouts)
	tab := metrics.NewTable(
		"E7: Provisioning for "+space.String()+" at measured per-VM footprint",
		"idle_timeout", "peak_live_vms", "per_vm_MiB", "servers_16GiB")
	const MiB = 1 << 20
	imageBytes := uint64(farm.DefaultImage().ResidentPages * 4096)
	perVM := uint64(perVMFootprintMB*MiB) + vmm.DefaultHostConfig("ref").PerVMOverheadBytes
	for _, timeout := range timeouts {
		peak := e3.PeakByTimeout[timeout]
		servers := farm.ServersNeeded(peak, perVM, imageBytes, 16<<30)
		tab.AddRow(labelTimeout(timeout), peak, float64(perVM)/MiB, servers)
	}
	return E7Result{Table: tab}
}

// E8Result holds the internal-reflection chain-depth outputs.
type E8Result struct {
	Table *metrics.Table
	// MaxDepth is the deepest infection generation observed with
	// reflection enabled.
	MaxDepth int
}

// RunE8 releases a multi-stage worm into the honeyfarm and compares
// what internal reflection captures against reflect-source-only
// containment (Figure E8): without reflection the second stage and
// onward infections are invisible; with it, whole chains are captured.
func RunE8(seed uint64, dur time.Duration) E8Result {
	res := E8Result{Table: metrics.NewTable(
		"E8: Multi-stage capture vs reflection ("+dur.String()+" run)",
		"policy", "vms_infected", "max_chain_depth", "reflections")}

	payloadServer := netsim.MustParseAddr("66.6.6.6")
	for _, pol := range []gateway.Policy{gateway.PolicyReflectSource, gateway.PolicyInternalReflect} {
		k := sim.NewKernel(seed)
		fc := farm.DefaultConfig()
		fc.Servers = 8
		fc.Image = farm.ImageSpec{Name: "winxp", NumPages: 8192, ResidentPages: 2048, DiskBlocks: 256, Seed: 42}
		fc.Profile = guest.MultiStage(payloadServer)
		gc := gateway.DefaultConfig()
		gc.Policy = pol
		gc.IdleTimeout = 0
		gc.DetectThreshold = 0
		gc.ReflectionLimit = 96
		// The worm scans the Internet at large; at real scale the odds of
		// a random probe landing back inside one /16 are negligible, so
		// scan targets are strictly external. Propagation inside the farm
		// then happens only via internal reflection — the mechanism under
		// test.
		fc.PickTarget = func(r *sim.RNG) netsim.Addr {
			for {
				a := netsim.Addr(r.Uint64n(1 << 32))
				if !gc.Space.Contains(a) && a != 0 {
					return a
				}
			}
		}
		f := farm.MustNew(k, fc)
		g := gateway.New(k, gc, f)
		f.SetGateway(g)

		// Patient zero: the worm's first probe from outside.
		exploit := netsim.TCPSyn(netsim.MustParseAddr("200.1.2.3"), gc.Space.Nth(99), 31337, 445, 1)
		exploit.Flags |= netsim.FlagPSH
		exploit.Payload = fc.Profile.ExploitPayload(0)
		g.HandleInbound(sim.Start, exploit)
		k.RunUntil(sim.Start.Add(dur))
		g.Close()

		infected, maxDepth := 0, 0
		f.EachInstance(func(in *guest.Instance) {
			if in.Infected {
				infected++
				if in.Generation > maxDepth {
					maxDepth = in.Generation
				}
			}
		})
		st := g.Stats()
		if pol == gateway.PolicyInternalReflect {
			res.MaxDepth = maxDepth
		}
		res.Table.AddRow(pol.String(), infected, maxDepth, st.OutReflected)
	}
	return res
}

func ftoa(f float64) string {
	n := int(f)
	if float64(n) == f {
		return itoa(n)
	}
	return itoa(n) + "." + itoa(int(f*10)%10)
}

// StandardTrace generates the default /16 telescope trace shared by
// E3/E7.
func StandardTrace(seed uint64, dur time.Duration) []telescope.Record {
	cfg := telescope.DefaultGenConfig()
	cfg.Seed = seed
	cfg.Duration = dur
	recs, err := telescope.Generate(cfg)
	if err != nil {
		panic(err)
	}
	return recs
}

// StandardTimeouts is the recycling-policy sweep for E3/E7.
func StandardTimeouts() []time.Duration {
	return []time.Duration{500 * time.Millisecond, 5 * time.Second, 60 * time.Second, 300 * time.Second, 0}
}
