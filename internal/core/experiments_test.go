package core

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"potemkin/internal/gateway"
	"potemkin/internal/netsim"
	"potemkin/internal/telescope"
)

func TestE1ShapeHolds(t *testing.T) {
	res := RunE1(1, 10)
	if res.Table.NumRows() != int(5+3) {
		t.Fatalf("rows = %d\n%s", res.Table.NumRows(), res.Table)
	}
	// Headline shape: flash clone is sub-second; full boot is tens of
	// seconds; speedup is more than an order of magnitude.
	if res.CloneMeanMs < 300 || res.CloneMeanMs > 800 {
		t.Errorf("clone mean = %.0f ms, want ~520", res.CloneMeanMs)
	}
	if res.BootMeanMs < 10000 {
		t.Errorf("boot mean = %.0f ms, want tens of seconds", res.BootMeanMs)
	}
	if res.BootMeanMs/res.CloneMeanMs < 10 {
		t.Errorf("speedup = %.1f, want > 10x", res.BootMeanMs/res.CloneMeanMs)
	}
	if !strings.Contains(res.Table.String(), "device-clone") {
		t.Error("breakdown missing device-clone step")
	}
}

func TestE2DeltaBeatsFullCopy(t *testing.T) {
	res := RunE2(1, 20, 60*time.Second)
	if res.Footprint.NumRows() < 3 {
		t.Fatalf("too few samples:\n%s", res.Footprint)
	}
	// Final sample: delta per-VM MiB must be far below full-copy.
	last := res.Footprint.Row(res.Footprint.NumRows() - 1)
	delta, full := parseF(t, last[1]), parseF(t, last[4])
	if delta*4 > full {
		t.Errorf("delta %.1f MiB not << full-copy %.1f MiB\n%s", delta, full, res.Footprint)
	}
	// Content sharing and KSM passes are at least as good as plain delta.
	content := parseF(t, last[2])
	if content > delta*1.05 {
		t.Errorf("content sharing (%.2f) worse than delta (%.2f)", content, delta)
	}
	ksm := parseF(t, last[3])
	if ksm > delta*1.05 {
		t.Errorf("ksm (%.2f) worse than delta (%.2f)", ksm, delta)
	}
	if res.MeanFootprintMB <= 0 {
		t.Error("no measured footprint")
	}

	// Density: delta admits at least 5x more VMs on both server sizes.
	for col := 1; col <= 2; col++ {
		d := parseF(t, res.Density.Row(0)[col])
		f := parseF(t, res.Density.Row(1)[col])
		if d < 5*f {
			t.Errorf("col %d: delta %v not >> full %v\n%s", col, d, f, res.Density)
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func smallTrace(t *testing.T) []telescope.Record {
	t.Helper()
	cfg := telescope.DefaultGenConfig()
	cfg.Duration = 90 * time.Second
	cfg.Rate = 60
	recs, err := telescope.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestE3RecyclingReducesLiveVMs(t *testing.T) {
	trace := smallTrace(t)
	space := telescope.DefaultGenConfig().Space
	timeouts := []time.Duration{time.Second, 30 * time.Second, 0}
	res := RunE3(1, trace, space, timeouts)
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	p1 := res.PeakByTimeout[time.Second]
	p30 := res.PeakByTimeout[30*time.Second]
	pNever := res.PeakByTimeout[0]
	if !(p1 < p30 && p30 <= pNever) {
		t.Errorf("peaks not ordered: 1s=%d 30s=%d never=%d", p1, p30, pNever)
	}
	// The headline multiplexing claim: aggressive recycling needs far
	// fewer VMs than addresses touched.
	if pNever > 0 && p1*5 > pNever {
		t.Errorf("aggressive recycling only %dx better (%d vs %d)", pNever/max(p1, 1), p1, pNever)
	}
	if len(res.Series) != 3 {
		t.Errorf("series = %d", len(res.Series))
	}
}

func TestE3ScanFilterReducesChurn(t *testing.T) {
	trace := smallTrace(t)
	space := telescope.DefaultGenConfig().Space
	tab := RunE3ScanFilter(1, trace, space, 30*time.Second, []int{0, 3})
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	off := parseF(t, tab.Row(0)[2])
	on := parseF(t, tab.Row(1)[2])
	if on >= off {
		t.Errorf("filter did not reduce bindings: %v -> %v\n%s", off, on, tab)
	}
	if tab.Row(1)[3] == "0" {
		t.Errorf("no packets filtered:\n%s", tab)
	}
}

// TestE3LittlesLaw cross-checks the multiplexing result against
// queueing theory: live bindings form an M/G/∞-ish system, so mean
// concurrency ≈ binding arrival rate × mean binding lifetime (Little's
// law). The two sides are measured completely independently (one from
// the sampled live series, one from gateway counters), so agreement is
// strong evidence the recycling machinery is bookkeeping honestly.
func TestE3LittlesLaw(t *testing.T) {
	trace := smallTrace(t)
	space := telescope.DefaultGenConfig().Space
	timeout := 2 * time.Second
	res := RunE3(1, trace, space, []time.Duration{timeout})

	meanLive := parseF(t, res.Table.Row(0)[1]) // median ≈ mean for this regime
	created := parseF(t, res.Table.Row(0)[4])
	traceSecs := 90.0
	arrivalRate := created / traceSecs
	// Lifetime ≈ activity span + idle timeout + scrub lag (timeout/4 on
	// average) + clone time. Activity span per binding is small for
	// background traffic; bound it loosely.
	minLife := timeout.Seconds() + 0.5
	maxLife := timeout.Seconds()*1.5 + 3.0
	lo, hi := arrivalRate*minLife, arrivalRate*maxLife
	if meanLive < lo*0.5 || meanLive > hi*2 {
		t.Errorf("Little's law violated: live %v outside [%v, %v] (rate %.1f/s)",
			meanLive, lo*0.5, hi*2, arrivalRate)
	}
}

func TestE4WorkloadProcessesFrames(t *testing.T) {
	w := NewE4Workload(1, 100, 1000, 0.9)
	before := w.G.Stats().InboundPackets
	for i := 0; i < 500; i++ {
		w.Step()
	}
	st := w.G.Stats()
	if st.InboundPackets != before+500 {
		t.Errorf("inbound = %d", st.InboundPackets-before)
	}
	if st.InboundNonIP != 0 {
		t.Errorf("non-IP = %d (frames should be valid)", st.InboundNonIP)
	}
	if st.DeliveredToVM == 0 {
		t.Error("nothing delivered on warm path")
	}
}

func TestE5ContainmentShape(t *testing.T) {
	res := RunE5(1, StandardE5Arms(), 90*time.Second)
	if res.Table.NumRows() != 5 {
		t.Fatalf("rows = %d\n%s", res.Table.NumRows(), res.Table)
	}
	rows := map[string][]string{}
	for i := 0; i < res.Table.NumRows(); i++ {
		r := res.Table.Row(i)
		rows[r[0]] = r
	}
	// Contained policies leak nothing.
	for _, arm := range []string{"drop-all", "reflect-source", "internal-reflect"} {
		if rows[arm][3] != "0" {
			t.Errorf("%s leaked infections: %v", arm, rows[arm])
		}
	}
	// Open honeyfarm leaks packets.
	if rows["open"][2] == "0" {
		t.Errorf("open honeyfarm leaked no packets: %v", rows["open"])
	}
	// Every honeyfarm arm captured the worm.
	for _, arm := range []string{"open", "drop-all", "reflect-source", "internal-reflect"} {
		if rows[arm][4] == "none" {
			t.Errorf("%s never captured the worm", arm)
		}
	}
	if len(res.Curves) != 5 {
		t.Errorf("curves = %d", len(res.Curves))
	}
}

func TestE6DetectionScales(t *testing.T) {
	res := RunE6(1, []int{8, 16}, []float64{100}, 2)
	if res.Table.NumRows() != 2 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	t8 := parseF(t, res.Table.Row(0)[1])
	t16 := parseF(t, res.Table.Row(1)[1])
	if t8 >= t16 {
		t.Errorf("/8 detection (%v) not faster than /16 (%v)", t8, t16)
	}
}

func TestE7Provisioning(t *testing.T) {
	trace := smallTrace(t)
	space := telescope.DefaultGenConfig().Space
	res := RunE7(1, trace, space, []time.Duration{time.Second, 0}, 2.0)
	if res.Table.NumRows() != 2 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	sAggressive := parseF(t, res.Table.Row(0)[3])
	sNever := parseF(t, res.Table.Row(1)[3])
	if sAggressive > sNever {
		t.Errorf("aggressive recycling needs MORE servers (%v vs %v)", sAggressive, sNever)
	}
}

func TestE9LatencyKnee(t *testing.T) {
	res := RunE9(1, 100*time.Microsecond, []float64{0.3, 0.9, 1.2}, 5*time.Second)
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	low := parseF(t, res.Table.Row(0)[2])
	high := parseF(t, res.Table.Row(1)[2])
	over := parseF(t, res.Table.Row(2)[2])
	// Below saturation: mean sojourn near the 0.1 ms service time.
	if low < 0.09 || low > 0.3 {
		t.Errorf("30%% load mean = %v ms, want ~0.1-0.2", low)
	}
	// The knee: latency grows sharply approaching capacity and the
	// overloaded point both queues to the cap and drops.
	if high < 2*low {
		t.Errorf("no knee: 30%%=%v 90%%=%v", low, high)
	}
	if over < high {
		t.Errorf("overload (%v) not worse than 90%% (%v)", over, high)
	}
	if drop := parseF(t, res.Table.Row(2)[5]); drop <= 0 {
		t.Errorf("overload dropped %v%%, want > 0", drop)
	}
	if drop := parseF(t, res.Table.Row(0)[5]); drop != 0 {
		t.Errorf("30%% load dropped %v%%", drop)
	}
}

func TestE10ResponseShrinksEpidemic(t *testing.T) {
	arms := []E10Arm{
		{Name: "no-response"},
		{Name: "/16-slow", TelescopeBits: 16, ReactionDelay: 20 * time.Minute},
		{Name: "/8-fast", TelescopeBits: 8, ReactionDelay: time.Minute},
	}
	res := RunE10(1, arms, time.Hour, 0.005)
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	control := parseF(t, res.Table.Row(0)[3])
	slow := parseF(t, res.Table.Row(1)[3])
	fast := parseF(t, res.Table.Row(2)[3])
	// Response always beats no response; faster+bigger beats slower+smaller.
	if !(fast < slow && slow < control) {
		t.Errorf("final infected not ordered: control=%v slow=%v fast=%v\n%s",
			control, slow, fast, res.Table)
	}
	// The fast arm protected a large population.
	if imm := parseF(t, res.Table.Row(2)[4]); imm < control/4 {
		t.Errorf("fast arm immunized only %v of %v", imm, control)
	}
	// Control arm never captured or responded.
	if res.Table.Row(0)[1] != "n/a" || res.Table.Row(0)[2] != "n/a" {
		t.Errorf("control arm row: %v", res.Table.Row(0))
	}
}

func TestE2cAnalyticBound(t *testing.T) {
	res := RunE2c(1, []float64{1, 10, 100})
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	// Bound is inversely proportional to the per-VM rate.
	v1 := parseF(t, res.Table.Row(0)[1])
	v10 := parseF(t, res.Table.Row(1)[1])
	v100 := parseF(t, res.Table.Row(2)[1])
	if v1 != 10*v10 || v10 != 10*v100 {
		t.Errorf("bounds not inverse-linear: %v %v %v", v1, v10, v100)
	}
}

func TestE8ReflectionCapturesChains(t *testing.T) {
	res := RunE8(1, 15*time.Second)
	if res.Table.NumRows() != 2 {
		t.Fatalf("rows = %d\n%s", res.Table.NumRows(), res.Table)
	}
	noReflect := res.Table.Row(0)
	withReflect := res.Table.Row(1)
	// Without reflection only patient zero is infected; with it, the
	// chain propagates.
	if parseF(t, noReflect[1]) != 1 {
		t.Errorf("reflect-source infected = %v, want 1\n%s", noReflect[1], res.Table)
	}
	if parseF(t, withReflect[1]) < 2 {
		t.Errorf("internal-reflect infected = %v, want chain", withReflect[1])
	}
	if res.MaxDepth < 2 {
		t.Errorf("max depth = %d, want >= 2", res.MaxDepth)
	}
}

// TestExperimentsDeterministic locks in the bit-for-bit reproducibility
// EXPERIMENTS.md promises: same seed, same tables.
func TestExperimentsDeterministic(t *testing.T) {
	if a, b := RunE1(3, 5).Table.String(), RunE1(3, 5).Table.String(); a != b {
		t.Errorf("E1 diverged:\n%s\n---\n%s", a, b)
	}
	arms := []E5Arm{{Name: "drop-all", Policy: gateway.PolicyDropAll}}
	if a, b := RunE5(3, arms, 20*time.Second).Table.String(),
		RunE5(3, arms, 20*time.Second).Table.String(); a != b {
		t.Errorf("E5 diverged:\n%s\n---\n%s", a, b)
	}
	if a, b := RunE8(3, 8*time.Second).Table.String(), RunE8(3, 8*time.Second).Table.String(); a != b {
		t.Errorf("E8 diverged:\n%s\n---\n%s", a, b)
	}
	e10 := []E10Arm{{Name: "fast", TelescopeBits: 8, ReactionDelay: time.Minute}}
	if a, b := RunE10(3, e10, 10*time.Minute, 0.01).Table.String(),
		RunE10(3, e10, 10*time.Minute, 0.01).Table.String(); a != b {
		t.Errorf("E10 diverged:\n%s\n---\n%s", a, b)
	}
}

func TestStandardTraceAndTimeouts(t *testing.T) {
	trace := StandardTrace(1, time.Minute)
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	if got := StandardTimeouts(); len(got) != 5 || got[len(got)-1] != 0 {
		t.Errorf("timeouts = %v", got)
	}
	_ = gateway.PolicyOpen
	_ = netsim.Addr(0)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
