package core

import (
	"time"

	"potemkin/internal/gateway"
	"potemkin/internal/gre"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
	"potemkin/internal/vmm"
	"potemkin/internal/worm"
)

// E9Result holds the gateway load-latency experiment (an extension
// beyond the paper's tables: the paper asserts its Click gateway keeps
// up with telescope feeds; this measures what happens as offered load
// approaches and passes the gateway's service capacity).
type E9Result struct{ Table *metrics.Table }

// RunE9 offers Poisson GRE-frame arrivals to a gateway modeled as a
// single-server queue with deterministic per-frame service time, and
// reports sojourn latency and loss across a load sweep. Below
// saturation latency stays near the service time; at the knee it
// explodes — the standard provisioning curve an operator sizes the
// gateway box against.
func RunE9(seed uint64, serviceTime time.Duration, loadFractions []float64, dur time.Duration) E9Result {
	tab := metrics.NewTable(
		"E9: Gateway sojourn latency vs offered load (service "+serviceTime.String()+", "+dur.String()+" runs)",
		"offered_load", "offered_pps", "mean_ms", "p95_ms", "p99_ms", "dropped_pct")
	capacity := 1.0 / serviceTime.Seconds()

	for _, frac := range loadFractions {
		k := sim.NewKernel(seed)
		fb := &nullBackend{k: k}
		gcfg := gateway.DefaultConfig()
		gcfg.IdleTimeout = 0
		gcfg.DetectThreshold = 0
		g := gateway.New(k, gcfg, fb)

		// Pre-warm a binding so service work is the steady-state path.
		g.HandleInbound(k.Now(), netsim.TCPSyn(1, gcfg.Space.Nth(0), 1, 445, 1))
		k.Run()

		var lat metrics.Histogram
		station := &netsim.Station{
			K:          k,
			Service:    serviceTime,
			QueueLimit: 4096,
		}
		stamps := make(map[*netsim.Packet]sim.Time)
		station.Serve = func(now sim.Time, pkt *netsim.Packet) {
			lat.Observe(float64(now.Sub(stamps[pkt])) / float64(time.Millisecond))
			delete(stamps, pkt)
			g.HandleGREFrame(now, pkt.Payload)
		}

		rate := capacity * frac
		r := k.Stream("arrivals")
		tun := gre.NewTunnel(netsim.MustParseAddr("1.1.1.1"), netsim.MustParseAddr("2.2.2.2"), 7)
		inner := netsim.TCPSyn(netsim.MustParseAddr("6.6.6.6"), gcfg.Space.Nth(0), 999, 445, 1)
		var gen func(now sim.Time)
		gen = func(now sim.Time) {
			outer := tun.Wrap(inner)
			stamps[outer] = now
			if !station.Arrive(outer) {
				delete(stamps, outer)
			}
			k.After(time.Duration(r.Exp(1e9/rate)), gen)
		}
		k.After(0, gen)
		k.RunUntil(sim.Start.Add(dur))
		g.Close()

		dropPct := 100 * float64(station.Stats.Dropped) / float64(station.Stats.Arrivals)
		tab.AddRow(pct(frac), rate, lat.Mean(), lat.Quantile(0.95), lat.Quantile(0.99), dropPct)
	}
	return E9Result{Table: tab}
}

func pct(f float64) string { return ftoa(f*100) + "%" }

// E10Arm is one honeyfarm-response configuration.
type E10Arm struct {
	Name string
	// TelescopeBits sizes the monitored space; 0 means no honeyfarm
	// (control arm, no response ever fires).
	TelescopeBits int
	// ReactionDelay is capture → countermeasure-deployed lag (signature
	// generation, validation, rollout start).
	ReactionDelay time.Duration
}

// StandardE10Arms is the default sweep.
func StandardE10Arms() []E10Arm {
	return []E10Arm{
		{Name: "no-response"},
		{Name: "/16 + 1h reaction", TelescopeBits: 16, ReactionDelay: time.Hour},
		{Name: "/16 + 10m reaction", TelescopeBits: 16, ReactionDelay: 10 * time.Minute},
		{Name: "/8 + 10m reaction", TelescopeBits: 8, ReactionDelay: 10 * time.Minute},
		{Name: "/8 + 1m reaction", TelescopeBits: 8, ReactionDelay: time.Minute},
	}
}

// E10Result holds the response experiment outputs.
type E10Result struct {
	Table  *metrics.Table
	Curves []*metrics.Series
}

// captureOverhead is the measured capture pipeline latency on top of
// the first telescope hit (clone ≈ 0.5 s + infection + detection; E5
// measures first capture ≈ 0.6 s after outbreak contact).
const captureOverhead = time.Second

// RunE10 quantifies why honeyfarms exist: the earlier a live capture,
// the earlier a countermeasure deploys, the smaller the epidemic. Each
// arm runs the same outbreak; the honeyfarm arm fires StartResponse at
// first-telescope-hit + captureOverhead + reaction delay, immunizing
// the remaining susceptibles at patchRate. (The capture pipeline's
// ~1 s overhead is taken from E5's measurement rather than re-simulating
// the farm, which keeps multi-hour epidemics tractable; the quantity
// under study is the telescope/reaction timing, which dominates by
// orders of magnitude.)
func RunE10(seed uint64, arms []E10Arm, dur time.Duration, patchRate float64) E10Result {
	res := E10Result{Table: metrics.NewTable(
		"E10: Epidemic outcome vs honeyfarm-enabled response ("+dur.String()+", patch rate "+ftoa(patchRate*100)+"%/s)",
		"arm", "capture_s", "response_s", "final_infected", "immunized")}

	type armResult struct {
		curve      *metrics.Series
		captureAt  float64
		responseAt float64
		infected   int
		immunized  int
	}
	results := make([]armResult, len(arms))
	ForEach(len(arms), func(i int) {
		arm := arms[i]
		k := sim.NewKernel(seed)
		cfg := worm.DefaultConfig()
		cfg.Seed = seed
		cfg.Susceptible = 1 << 20
		cfg.InitialInfected = 10
		cfg.ScanRate = 30
		cfg.Deliver = nil
		if arm.TelescopeBits > 0 {
			cfg.Telescope = netsim.Prefix{Base: netsim.MustParseAddr("10.0.0.0"), Bits: arm.TelescopeBits}
		}
		e := worm.New(k, cfg)
		e.Start()

		captureAt, responseAt := -1.0, -1.0
		if arm.TelescopeBits > 0 {
			var watch *sim.Ticker
			watch = k.Every(time.Second, func(now sim.Time) {
				if !e.Stats().SeenTelescope {
					return
				}
				captureAt = e.Stats().FirstTelescopeHit.Add(captureOverhead).Seconds()
				deployAt := e.Stats().FirstTelescopeHit.Add(captureOverhead + arm.ReactionDelay)
				k.At(maxTime(deployAt, now), func(then sim.Time) {
					responseAt = then.Seconds()
					e.StartResponse(patchRate)
				})
				watch.Stop()
			})
		}
		k.RunUntil(sim.Start.Add(dur))
		e.Stop()

		curve := e.Curve.Downsample(120)
		curve.Name = arm.Name
		results[i] = armResult{
			curve:      curve,
			captureAt:  captureAt,
			responseAt: responseAt,
			infected:   e.Infected(),
			immunized:  e.Immunized(),
		}
	})
	for i, arm := range arms {
		r := results[i]
		res.Curves = append(res.Curves, r.curve)
		capCell, respCell := any("n/a"), any("n/a")
		if r.captureAt >= 0 {
			capCell = r.captureAt
		}
		if r.responseAt >= 0 {
			respCell = r.responseAt
		}
		res.Table.AddRow(arm.Name, capCell, respCell, r.infected, r.immunized)
	}
	return res
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// E2cResult holds the CPU-bound density table.
type E2cResult struct{ Table *metrics.Table }

// RunE2c reports the paper's second provisioning axis: how many
// *active* VMs one server's CPU sustains as a function of per-VM
// traffic, from the CPU model's analytic bound, cross-checked with a
// measured utilization run at one operating point.
func RunE2c(seed uint64, perVMRates []float64) E2cResult {
	m := vmm.DefaultCPUModel()
	tab := metrics.NewTable(
		"E2c: CPU-bound active-VM density (4 cores, "+m.PerPacket.String()+"/pkt)",
		"pkts_per_sec_per_vm", "max_active_vms", "memory_bound_16GiB")
	memBound := int((uint64(16<<30) - farmImageBytes()) / (1 << 20)) // per-VM ~1MiB overhead floor
	for _, rate := range perVMRates {
		tab.AddRow(rate, m.MaxActiveVMs(rate), memBound)
	}
	return E2cResult{Table: tab}
}

func farmImageBytes() uint64 { return 8192 * 4096 }
