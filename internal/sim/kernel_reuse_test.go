package sim

import (
	"testing"
	"time"
)

func TestKernelNextEvent(t *testing.T) {
	k := NewKernel(1)
	if _, ok := k.NextEvent(); ok {
		t.Fatal("empty kernel reported a pending event")
	}
	k.At(Time(5*time.Millisecond), func(Time) {})
	early := k.At(Time(2*time.Millisecond), func(Time) {})
	if at, ok := k.NextEvent(); !ok || at != Time(2*time.Millisecond) {
		t.Fatalf("NextEvent = %v,%v, want 2ms,true", at, ok)
	}
	// Cancelling the earliest event must move the horizon, not report a
	// dead entry — adaptive lookahead widens against this value.
	early.Stop()
	if at, ok := k.NextEvent(); !ok || at != Time(5*time.Millisecond) {
		t.Fatalf("NextEvent after cancel = %v,%v, want 5ms,true", at, ok)
	}
	k.Run()
	if _, ok := k.NextEvent(); ok {
		t.Fatal("drained kernel reported a pending event")
	}
}

// TestTimerStaleStopIsNoOp: once an event has fired, its heap item may
// be recycled for a later event. A Timer retained from the first
// scheduling must then report false from Stop and — critically — must
// not cancel the item's new occupant.
func TestTimerStaleStopIsNoOp(t *testing.T) {
	k := NewKernel(1)
	t1 := k.At(Time(time.Millisecond), func(Time) {})
	k.RunUntil(Time(2 * time.Millisecond)) // t1 fires, its item is recycled

	fired := false
	t2 := k.At(Time(3*time.Millisecond), func(Time) { fired = true })
	if t1.Stop() {
		t.Fatal("stale Timer claimed to cancel a fired event")
	}
	k.RunUntil(Time(4 * time.Millisecond))
	if !fired {
		t.Fatal("stale Timer.Stop cancelled the recycled item's new event")
	}
	if t2.Stop() {
		t.Fatal("Stop on a fired timer reported pending")
	}
}

func TestTimerStopStillWorksWhilePending(t *testing.T) {
	k := NewKernel(1)
	fired := false
	tm := k.At(Time(time.Millisecond), func(Time) { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer reported not pending")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported pending")
	}
	k.RunUntil(Time(2 * time.Millisecond))
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func kernelNop(Time) {}

// TestKernelSteadyStateAllocs: with the item freelist warm, an
// At+RunUntil cycle must not allocate — scheduling is the innermost
// loop of every epoch.
func TestKernelSteadyStateAllocs(t *testing.T) {
	k := NewKernel(1)
	cycle := func() {
		k.After(time.Microsecond, kernelNop)
		k.After(2*time.Microsecond, kernelNop)
		k.RunFor(5 * time.Microsecond)
	}
	for i := 0; i < 8; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("steady-state scheduling allocates %.1f objects per cycle, want 0", avg)
	}
}
