package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// parallelHarness builds N kernels that each run a periodic local event
// writing to a per-shard log and, every third tick, send a message to
// the next shard to be logged there — enough cross-traffic to catch any
// merge-order or barrier bug.
type parallelHarness struct {
	r    *ParallelRunner
	logs []*strings.Builder
}

func newParallelHarness(n int, lookahead time.Duration) *parallelHarness {
	kernels := make([]*Kernel, n)
	logs := make([]*strings.Builder, n)
	for i := range kernels {
		kernels[i] = NewKernel(uint64(100 + i))
		logs[i] = &strings.Builder{}
	}
	h := &parallelHarness{logs: logs}
	h.r = NewParallelRunner(kernels, lookahead)
	for i := range kernels {
		i := i
		k := kernels[i]
		rng := k.Stream("load")
		tick := 0
		var step Event
		step = func(now Time) {
			tick++
			fmt.Fprintf(logs[i], "s%d local t=%v r=%d\n", i, now, rng.Uint64n(1000))
			if tick%3 == 0 {
				dst := (i + 1) % n
				src := i
				at := now.Add(lookahead)
				h.r.Send(src, dst, at, func(then Time) {
					fmt.Fprintf(logs[dst], "s%d recv from s%d t=%v\n", dst, src, then)
				})
			}
			k.After(137*time.Microsecond, step)
		}
		k.After(0, step)
	}
	return h
}

func (h *parallelHarness) dump() string {
	var b strings.Builder
	for i, l := range h.logs {
		fmt.Fprintf(&b, "== shard %d ==\n%s", i, l.String())
	}
	return b.String()
}

func TestParallelRunnerMatchesSequential(t *testing.T) {
	const n = 4
	la := time.Millisecond
	run := func(seq bool) string {
		h := newParallelHarness(n, la)
		h.r.SetSequential(seq)
		h.r.RunUntil(Time(50 * time.Millisecond))
		return h.dump()
	}
	want := run(true)
	for trial := 0; trial < 3; trial++ {
		if got := run(false); got != want {
			t.Fatalf("trial %d: parallel log differs from sequential oracle\nseq:\n%s\npar:\n%s", trial, want, got)
		}
	}
	if want == "" {
		t.Fatal("harness produced no events")
	}
}

func TestParallelRunnerEpochBounds(t *testing.T) {
	kernels := []*Kernel{NewKernel(1), NewKernel(2)}
	r := NewParallelRunner(kernels, time.Millisecond)
	var got [][2]Time
	r.SetBeforeEpoch(func(start, end Time) { got = append(got, [2]Time{start, end}) })
	r.RunUntil(Time(2500 * time.Microsecond))
	want := [][2]Time{
		{0, Time(time.Millisecond)},
		{Time(time.Millisecond), Time(2 * time.Millisecond)},
		{Time(2 * time.Millisecond), Time(2500 * time.Microsecond)},
	}
	if len(got) != len(want) {
		t.Fatalf("epochs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("epoch %d = %v, want %v", i, got[i], want[i])
		}
	}
	for i, k := range kernels {
		if k.Now() != Time(2500*time.Microsecond) {
			t.Fatalf("kernel %d clock = %v, want 2.5ms", i, k.Now())
		}
	}
	if r.Now() != Time(2500*time.Microsecond) {
		t.Fatalf("runner clock = %v", r.Now())
	}
}

func TestParallelRunnerLookaheadViolationPanics(t *testing.T) {
	kernels := []*Kernel{NewKernel(1), NewKernel(2)}
	r := NewParallelRunner(kernels, time.Millisecond)
	r.RunUntil(Time(5 * time.Millisecond))
	// A message into the past of the destination shard must be rejected
	// loudly: silently reordering time would corrupt the simulation.
	r.Send(0, 1, Time(time.Millisecond), func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected lookahead-violation panic")
		}
	}()
	r.RunUntil(Time(6 * time.Millisecond))
}

func TestParallelRunnerAlignsClocks(t *testing.T) {
	a, b := NewKernel(1), NewKernel(2)
	fired := false
	a.RunUntil(Time(3 * time.Millisecond))
	b.At(Time(2*time.Millisecond), func(Time) { fired = true })
	r := NewParallelRunner([]*Kernel{a, b}, time.Millisecond)
	if r.Now() != Time(3*time.Millisecond) {
		t.Fatalf("runner clock = %v, want 3ms (latest kernel)", r.Now())
	}
	if !fired {
		t.Fatal("aligning should have run the lagging kernel's events")
	}
	if b.Now() != a.Now() {
		t.Fatalf("clocks not aligned: %v vs %v", a.Now(), b.Now())
	}
}

func TestParallelRunnerDeliversTailMessages(t *testing.T) {
	kernels := []*Kernel{NewKernel(1), NewKernel(2)}
	r := NewParallelRunner(kernels, time.Millisecond)
	// A message sent outside any epoch is delivered by the exchange at
	// the head of the next run.
	ran := false
	r.Send(0, 1, r.Now().Add(time.Millisecond), func(Time) { ran = true })
	r.RunFor(2 * time.Millisecond)
	if !ran {
		t.Fatal("pre-run Send not delivered")
	}
}
