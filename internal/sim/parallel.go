package sim

// Conservative parallel discrete-event execution over a set of Kernels.
//
// ParallelRunner advances N kernels in lockstep epochs of length
// `lookahead`, the classic conservative-synchronization scheme: during
// an epoch every kernel runs its own events on its own goroutine and
// may not touch any other kernel's state; all cross-kernel interaction
// is expressed as messages handed to Send, which are delivered only at
// the epoch barrier, in a fixed (source index, send order) merge order.
// Because a message sent at time t is delivered no earlier than t +
// lookahead — and every epoch is at most lookahead long — a message can
// never land inside the epoch that produced it, so each kernel's event
// stream is a pure function of the barrier-merged inputs and the run is
// byte-identical whether the epochs execute on goroutines or
// sequentially on one thread (SetSequential). That equivalence is what
// makes the parallel engine testable: the single-threaded mode is the
// oracle.
//
// The control methods (RunUntil, RunFor, Send from outside an epoch,
// SetBeforeEpoch) are for a single driver goroutine. During an epoch,
// Send(src, ...) may only be called from shard src's goroutine — the
// per-pair outboxes are sharded by source exactly so that rule needs no
// locks.

import (
	"fmt"
	"sync"
	"time"
)

// Barrier is the epoch-coordination surface a shard executor runs on: a
// shared clock, epoch-wise advancement, and a single-threaded pre-epoch
// injection hook. The in-process implementation is *ParallelRunner;
// internal/cluster's Coordinator implements the same surface over
// remote worker processes, which is what lets replay drivers and
// experiment code run unchanged whether the shards live on goroutines
// or on other machines.
type Barrier interface {
	// Now returns the barrier clock; every shard has run to exactly
	// this time whenever no epoch is in flight.
	Now() Time
	// Lookahead returns the epoch length / minimum cross-shard latency.
	Lookahead() time.Duration
	// RunUntil advances every shard to deadline in epochs of at most
	// the lookahead.
	RunUntil(deadline Time)
	// RunFor is RunUntil(Now()+d).
	RunFor(d time.Duration)
	// SetBeforeEpoch installs a hook called single-threaded at the
	// start of every epoch with the epoch bounds [start, end), before
	// any shard runs. Nil removes the hook.
	SetBeforeEpoch(fn func(start, end Time))
}

var _ Barrier = (*ParallelRunner)(nil)

// crossMsg is one scheduled cross-shard delivery.
type crossMsg struct {
	at Time
	fn Event
}

// ParallelRunner synchronizes kernels with conservative epoch barriers.
type ParallelRunner struct {
	kernels   []*Kernel
	lookahead time.Duration
	now       Time

	// outbox[src][dst] holds messages sent this epoch, in send order.
	// Only shard src's goroutine appends to outbox[src]; the barrier
	// (WaitGroup) orders those appends before the exchange reads them.
	outbox [][][]crossMsg

	sequential  bool
	beforeEpoch func(start, end Time)

	epochSeq uint64
	observer func(EpochStats)
}

// EpochStats is one epoch's wall-clock phase breakdown, reported to the
// observer installed with SetEpochObserver. Start/End are the epoch's
// simulated-time bounds; everything else is wall-clock. AdvanceNS[i] is
// shard i's kernel-advance duration and BarrierWaitNS[i] the time it
// then idled waiting for the slowest shard (max advance minus its own).
// ExchangeMsgs counts cross-shard messages delivered entering the
// epoch. These figures are observability-only — they never influence
// event order, so an observed run is byte-identical to an unobserved
// one.
type EpochStats struct {
	Seq           uint64
	Start, End    Time
	WallNS        int64
	ExchangeNS    int64
	ExchangeMsgs  int
	AdvanceNS     []int64
	BarrierWaitNS []int64
	SlowestShard  int
}

// NewParallelRunner builds a runner over kernels with the given
// lookahead (the minimum cross-shard latency; must be positive). The
// runner's clock starts at the latest kernel clock and the lagging
// kernels are run forward to it, so pre-run setup (snapshot warmup)
// that advanced the kernels unevenly is tolerated.
func NewParallelRunner(kernels []*Kernel, lookahead time.Duration) *ParallelRunner {
	if len(kernels) == 0 {
		panic("sim: ParallelRunner with no kernels")
	}
	if lookahead <= 0 {
		panic("sim: ParallelRunner with non-positive lookahead")
	}
	r := &ParallelRunner{kernels: kernels, lookahead: lookahead}
	r.outbox = make([][][]crossMsg, len(kernels))
	for i := range r.outbox {
		r.outbox[i] = make([][]crossMsg, len(kernels))
	}
	r.Align()
	return r
}

// Align advances the runner clock to the latest kernel clock and runs
// every lagging kernel forward to it (single-threaded). Call it after
// advancing kernels outside the runner's control, e.g. per-shard image
// preparation at construction time.
func (r *ParallelRunner) Align() {
	for _, k := range r.kernels {
		if k.Now() > r.now {
			r.now = k.Now()
		}
	}
	for _, k := range r.kernels {
		k.RunUntil(r.now)
	}
}

// Now returns the runner clock: every kernel has run to exactly this
// time whenever no epoch is in flight.
func (r *ParallelRunner) Now() Time { return r.now }

// Lookahead returns the epoch length.
func (r *ParallelRunner) Lookahead() time.Duration { return r.lookahead }

// Shards returns the number of kernels.
func (r *ParallelRunner) Shards() int { return len(r.kernels) }

// Kernel returns shard i's kernel. Outside an epoch the caller may
// schedule on it directly; during an epoch only shard i's goroutine may.
func (r *ParallelRunner) Kernel(i int) *Kernel { return r.kernels[i] }

// SetSequential switches epoch execution to a single thread in shard
// order — the determinism oracle the equivalence tests compare against.
func (r *ParallelRunner) SetSequential(seq bool) { r.sequential = seq }

// Sequential reports whether epochs run single-threaded.
func (r *ParallelRunner) Sequential() bool { return r.sequential }

// SetBeforeEpoch installs a hook called at the start of every epoch
// with the epoch bounds [start, end), after pending cross-shard
// messages have been delivered and before any shard runs. The hook runs
// single-threaded and may schedule directly on any kernel (replay
// feeders use it to inject the records falling inside the epoch). Nil
// removes the hook.
func (r *ParallelRunner) SetBeforeEpoch(fn func(start, end Time)) { r.beforeEpoch = fn }

// SetEpochObserver installs a profiling hook invoked single-threaded at
// the end of every epoch with that epoch's phase timings. Nil removes
// the hook; with no observer installed the epoch loop takes no
// timestamps and allocates nothing extra.
func (r *ParallelRunner) SetEpochObserver(fn func(EpochStats)) { r.observer = fn }

// pendingMsgs counts cross-shard messages queued for the next exchange.
func (r *ParallelRunner) pendingMsgs() int {
	n := 0
	for src := range r.outbox {
		for dst := range r.outbox[src] {
			n += len(r.outbox[src][dst])
		}
	}
	return n
}

// Send schedules fn to run on shard dst's kernel at time at. During an
// epoch it may only be called from shard src's goroutine; at must be at
// least the sending shard's current time plus the lookahead, or the
// barrier delivery will panic. Delivery happens at the next epoch
// boundary, merged deterministically by (src, send order).
func (r *ParallelRunner) Send(src, dst int, at Time, fn Event) {
	if fn == nil {
		panic("sim: Send nil event")
	}
	r.outbox[src][dst] = append(r.outbox[src][dst], crossMsg{at: at, fn: fn})
}

// exchange drains every outbox into the destination kernels in (src,
// send order) — the deterministic merge the equivalence proof rests on.
func (r *ParallelRunner) exchange() {
	for src := range r.outbox {
		for dst := range r.outbox[src] {
			msgs := r.outbox[src][dst]
			if len(msgs) == 0 {
				continue
			}
			k := r.kernels[dst]
			for _, m := range msgs {
				if m.at < k.Now() {
					panic(fmt.Sprintf(
						"sim: cross-shard message %d->%d at %v violates lookahead (destination clock %v)",
						src, dst, m.at, k.Now()))
				}
				k.At(m.at, m.fn)
			}
			r.outbox[src][dst] = msgs[:0]
		}
	}
}

// RunUntil advances every kernel to deadline in epochs of at most the
// lookahead, exchanging cross-shard messages at each barrier. On
// return, every kernel's clock reads exactly deadline (when deadline is
// ahead of the runner clock) and all messages sent by completed epochs
// have been delivered.
func (r *ParallelRunner) RunUntil(deadline Time) {
	if r.observer != nil {
		r.runUntilObserved(deadline)
		return
	}
	for r.now < deadline {
		r.exchange()
		end := r.now.Add(r.lookahead)
		if end > deadline {
			end = deadline
		}
		if r.beforeEpoch != nil {
			r.beforeEpoch(r.now, end)
		}
		if r.sequential {
			for _, k := range r.kernels {
				k.RunUntil(end)
			}
		} else {
			var wg sync.WaitGroup
			for _, k := range r.kernels {
				wg.Add(1)
				go func(k *Kernel) {
					defer wg.Done()
					k.RunUntil(end)
				}(k)
			}
			wg.Wait()
		}
		r.now = end
	}
	r.exchange()
}

// runUntilObserved is RunUntil with per-phase wall timing. Identical
// event execution — only timestamps are added around each phase and the
// observer is invoked at each barrier.
func (r *ParallelRunner) runUntilObserved(deadline Time) {
	for r.now < deadline {
		epochT0 := time.Now()
		msgs := r.pendingMsgs()
		r.exchange()
		exchangeNS := time.Since(epochT0).Nanoseconds()
		end := r.now.Add(r.lookahead)
		if end > deadline {
			end = deadline
		}
		start := r.now
		if r.beforeEpoch != nil {
			r.beforeEpoch(start, end)
		}
		advance := make([]int64, len(r.kernels))
		if r.sequential {
			for i, k := range r.kernels {
				t0 := time.Now()
				k.RunUntil(end)
				advance[i] = time.Since(t0).Nanoseconds()
			}
		} else {
			var wg sync.WaitGroup
			for i, k := range r.kernels {
				wg.Add(1)
				go func(i int, k *Kernel) {
					defer wg.Done()
					t0 := time.Now()
					k.RunUntil(end)
					advance[i] = time.Since(t0).Nanoseconds()
				}(i, k)
			}
			wg.Wait()
		}
		r.now = end
		r.epochSeq++
		slowest, maxAdv := 0, int64(0)
		for i, ns := range advance {
			if ns > maxAdv {
				slowest, maxAdv = i, ns
			}
		}
		wait := make([]int64, len(advance))
		for i, ns := range advance {
			wait[i] = maxAdv - ns
		}
		r.observer(EpochStats{
			Seq:           r.epochSeq,
			Start:         start,
			End:           end,
			WallNS:        time.Since(epochT0).Nanoseconds(),
			ExchangeNS:    exchangeNS,
			ExchangeMsgs:  msgs,
			AdvanceNS:     advance,
			BarrierWaitNS: wait,
			SlowestShard:  slowest,
		})
	}
	r.exchange()
}

// RunFor is RunUntil(Now()+d).
func (r *ParallelRunner) RunFor(d time.Duration) { r.RunUntil(r.now.Add(d)) }
