package sim

// Conservative parallel discrete-event execution over a set of Kernels.
//
// ParallelRunner advances N kernels in lockstep epochs of length
// `lookahead`, the classic conservative-synchronization scheme: during
// an epoch every kernel runs its own events on its own goroutine and
// may not touch any other kernel's state; all cross-kernel interaction
// is expressed as messages handed to Send, which are delivered only at
// the epoch barrier, in a fixed (source index, send order) merge order.
// Because a message sent at time t is delivered no earlier than t +
// lookahead — and every epoch is at most lookahead long — a message can
// never land inside the epoch that produced it, so each kernel's event
// stream is a pure function of the barrier-merged inputs and the run is
// byte-identical whether the epochs execute on goroutines or
// sequentially on one thread (SetSequential). That equivalence is what
// makes the parallel engine testable: the single-threaded mode is the
// oracle.
//
// # Adaptive lookahead
//
// SetAdaptive lets one epoch span several lookahead-sized cells when
// the runner can prove the extra barriers would have been no-ops. The
// widened window is derived purely from simulation state — the
// earliest pending kernel event plus the injection horizon installed
// with SetHorizon — never from wall clock, so a widened run stays
// byte-identical to the fixed-lookahead oracle: epochs only ever end on
// the same lookahead grid, and a grid cell is skipped only when no
// event, no injection, and therefore no cross-shard send could have
// occurred in it. See DESIGN.md "Epoch exchange" for the full argument.
//
// # Epoch exchange
//
// The per-(src,dst) outboxes are flat preallocated rings: Send appends
// into the source's cells during the epoch, and the barrier swaps each
// cell's live slice against a drained spare — no per-epoch allocation,
// and the slice being delivered into destination kernels is never the
// one a subsequent epoch appends to.
//
// The control methods (RunUntil, RunEpochs, RunFor, Send from outside
// an epoch, SetBeforeEpoch) are for a single driver goroutine. During
// an epoch, Send(src, ...) may only be called from shard src's
// goroutine — the per-pair outboxes are sharded by source exactly so
// that rule needs no locks.

import (
	"fmt"
	"sync"
	"time"
)

// Barrier is the epoch-coordination surface a shard executor runs on: a
// shared clock, epoch-wise advancement, and a single-threaded pre-epoch
// injection hook. The in-process implementation is *ParallelRunner;
// internal/cluster's Coordinator implements the same surface over
// remote worker processes, which is what lets replay drivers and
// experiment code run unchanged whether the shards live on goroutines
// or on other machines.
type Barrier interface {
	// Now returns the barrier clock; every shard has run to exactly
	// this time whenever no epoch is in flight.
	Now() Time
	// Lookahead returns the epoch length / minimum cross-shard latency.
	Lookahead() time.Duration
	// RunUntil advances every shard to deadline in epochs of at most
	// the lookahead (or wider when adaptive lookahead proves it safe).
	RunUntil(deadline Time)
	// RunEpochs advances like RunUntil but consults stop (when non-nil)
	// at each epoch barrier and returns early once it reports true —
	// replay drivers use it to hand the barrier a wide deadline while
	// still stopping at the first barrier after source exhaustion.
	RunEpochs(deadline Time, stop func() bool)
	// RunFor is RunUntil(Now()+d).
	RunFor(d time.Duration)
	// SetBeforeEpoch installs a hook called single-threaded at the
	// start of every epoch with the epoch bounds [start, end), before
	// any shard runs. Nil removes the hook.
	SetBeforeEpoch(fn func(start, end Time))
}

var _ Barrier = (*ParallelRunner)(nil)

// crossMsg is one scheduled cross-shard delivery.
type crossMsg struct {
	at Time
	fn Event
}

// outCell is one (src,dst) outbox: a live slice the source appends to
// during the epoch and a spare the barrier swaps in after draining, so
// capacity is reused forever and a draining slice is never appended to.
type outCell struct {
	live  []crossMsg
	spare []crossMsg
}

// ParallelRunner synchronizes kernels with conservative epoch barriers.
type ParallelRunner struct {
	kernels   []*Kernel
	lookahead time.Duration
	now       Time

	// outbox holds the n*n (src,dst) cells in src-major order — cell
	// (src,dst) lives at index src*n+dst, so iterating the flat slice
	// reproduces the (source index, send order) merge the equivalence
	// proof rests on. Only shard src's goroutine appends to src's row;
	// the barrier (WaitGroup) orders those appends before the exchange
	// reads them.
	outbox []outCell

	sequential  bool
	beforeEpoch func(start, end Time)

	// adaptMax bounds how many lookahead cells one epoch may span
	// (1 = fixed epochs); horizon, when set, reports the earliest
	// simulated time an external injector (the replay feeder) may still
	// schedule work at. Widening is only attempted when the horizon
	// covers every injection source: with a beforeEpoch hook installed
	// but no horizon the runner cannot see what the hook would inject,
	// so it stays on fixed epochs.
	adaptMax int
	horizon  func() Time

	// Persistent shard workers: one goroutine per kernel, parked on its
	// channel between epochs, so an epoch costs n channel sends and one
	// WaitGroup wait instead of n goroutine spawns. curEnd and timed
	// are written by the driver before the sends (the channel send /
	// receive pair orders them); advanceNS[i] is written only by worker
	// i during an epoch and read by the driver after wg.Wait.
	work      []chan struct{}
	wg        sync.WaitGroup
	curEnd    Time
	timed     bool
	warm      bool
	advanceNS []int64
	waitNS    []int64
	closed    bool

	epochSeq uint64
	observer func(EpochStats)
}

// EpochStats is one epoch's wall-clock phase breakdown, reported to the
// observer installed with SetEpochObserver. Start/End are the epoch's
// simulated-time bounds; everything else is wall-clock. AdvanceNS[i] is
// shard i's kernel-advance duration and BarrierWaitNS[i] the time it
// then idled waiting for the slowest shard (max advance minus its own).
// ExchangeMsgs counts cross-shard messages delivered entering the
// epoch. These figures are observability-only — they never influence
// event order, so an observed run is byte-identical to an unobserved
// one. The slices are reused across epochs: observers must copy, not
// retain, them.
type EpochStats struct {
	Seq           uint64
	Start, End    Time
	WallNS        int64
	ExchangeNS    int64
	ExchangeMsgs  int
	AdvanceNS     []int64
	BarrierWaitNS []int64
	SlowestShard  int
}

// NewParallelRunner builds a runner over kernels with the given
// lookahead (the minimum cross-shard latency; must be positive). The
// runner's clock starts at the latest kernel clock and the lagging
// kernels are run forward to it, so pre-run setup (snapshot warmup)
// that advanced the kernels unevenly is tolerated.
func NewParallelRunner(kernels []*Kernel, lookahead time.Duration) *ParallelRunner {
	if len(kernels) == 0 {
		panic("sim: ParallelRunner with no kernels")
	}
	if lookahead <= 0 {
		panic("sim: ParallelRunner with non-positive lookahead")
	}
	r := &ParallelRunner{kernels: kernels, lookahead: lookahead, adaptMax: 1}
	n := len(kernels)
	r.outbox = make([]outCell, n*n)
	r.advanceNS = make([]int64, n)
	r.waitNS = make([]int64, n)
	r.Align()
	// Workers start (and warm up) here rather than lazily at the first
	// epoch: construction is the one place their setup cost can't land
	// inside a measured run. Sequential mode leaves them parked; Close
	// stops them either way.
	r.startWorkers()
	return r
}

// Align advances the runner clock to the latest kernel clock and runs
// every lagging kernel forward to it (single-threaded). Call it after
// advancing kernels outside the runner's control, e.g. per-shard image
// preparation at construction time.
func (r *ParallelRunner) Align() {
	for _, k := range r.kernels {
		if k.Now() > r.now {
			r.now = k.Now()
		}
	}
	for _, k := range r.kernels {
		k.RunUntil(r.now)
	}
}

// Now returns the runner clock: every kernel has run to exactly this
// time whenever no epoch is in flight.
func (r *ParallelRunner) Now() Time { return r.now }

// Lookahead returns the epoch grid cell length (the minimum cross-shard
// latency; an adaptive epoch may span several cells).
func (r *ParallelRunner) Lookahead() time.Duration { return r.lookahead }

// Shards returns the number of kernels.
func (r *ParallelRunner) Shards() int { return len(r.kernels) }

// Kernel returns shard i's kernel. Outside an epoch the caller may
// schedule on it directly; during an epoch only shard i's goroutine may.
func (r *ParallelRunner) Kernel(i int) *Kernel { return r.kernels[i] }

// Epochs returns the number of epochs completed so far (the adaptive
// lookahead tests assert a widened run pays fewer barriers).
func (r *ParallelRunner) Epochs() uint64 { return r.epochSeq }

// SetSequential switches epoch execution to a single thread in shard
// order — the determinism oracle the equivalence tests compare against.
func (r *ParallelRunner) SetSequential(seq bool) { r.sequential = seq }

// Sequential reports whether epochs run single-threaded.
func (r *ParallelRunner) Sequential() bool { return r.sequential }

// SetAdaptive bounds adaptive lookahead: one epoch may span up to
// maxCells lookahead-sized grid cells when the pending-event horizon
// proves the skipped barriers would have been no-ops. maxCells <= 1
// restores fixed epochs (the default). Call only between runs.
func (r *ParallelRunner) SetAdaptive(maxCells int) {
	const bound = 1 << 16 // keep cells*lookahead far from overflow
	if maxCells < 1 {
		maxCells = 1
	}
	if maxCells > bound {
		maxCells = bound
	}
	r.adaptMax = maxCells
}

// Adaptive returns the adaptive-lookahead cell bound (1 = fixed).
func (r *ParallelRunner) Adaptive() int { return r.adaptMax }

// SetHorizon installs the injection horizon for adaptive lookahead: fn
// reports the earliest simulated time the pre-epoch hook may still
// schedule work at (End when its source is exhausted). With a
// beforeEpoch hook installed but no horizon, epochs stay fixed — the
// runner must assume the hook could inject into any cell. Nil removes
// the horizon. Call only between runs.
func (r *ParallelRunner) SetHorizon(fn func() Time) { r.horizon = fn }

// SetBeforeEpoch installs a hook called at the start of every epoch
// with the epoch bounds [start, end), after pending cross-shard
// messages have been delivered and before any shard runs. The hook runs
// single-threaded and may schedule directly on any kernel (replay
// feeders use it to inject the records falling inside the epoch). Nil
// removes the hook.
func (r *ParallelRunner) SetBeforeEpoch(fn func(start, end Time)) { r.beforeEpoch = fn }

// SetEpochObserver installs a profiling hook invoked single-threaded at
// the end of every epoch with that epoch's phase timings. Nil removes
// the hook; with no observer installed the epoch loop takes no
// timestamps and allocates nothing extra.
func (r *ParallelRunner) SetEpochObserver(fn func(EpochStats)) { r.observer = fn }

// Close stops the persistent shard worker goroutines (no-ops if they
// were never started or are already stopped). After Close the runner
// must not be advanced in parallel mode again; the engine calls it from
// its own Close.
func (r *ParallelRunner) Close() {
	if r.closed {
		return
	}
	r.closed = true
	for _, ch := range r.work {
		close(ch)
	}
}

// startWorkers launches one persistent goroutine per kernel. Each parks
// on its channel between epochs and advances its kernel to curEnd when
// poked — the channel send/receive pair publishes curEnd and timed, and
// wg.Done publishes the kernel state and advanceNS back to the driver.
// A warm-up round (the warm flag makes workers skip their kernels)
// pushes one no-op poke through every worker so the runtime structures
// backing the barrier — park/unpark records, semaphore entries — are
// allocated here at construction rather than inside the first epoch,
// keeping steady-state epochs allocation-free.
func (r *ParallelRunner) startWorkers() {
	r.work = make([]chan struct{}, len(r.kernels))
	for i := range r.kernels {
		ch := make(chan struct{}, 1)
		r.work[i] = ch
		i, k := i, r.kernels[i]
		go func() {
			for range ch {
				if r.warm {
					r.wg.Done()
					continue
				}
				if r.timed {
					t0 := time.Now()
					k.RunUntil(r.curEnd)
					r.advanceNS[i] = time.Since(t0).Nanoseconds()
				} else {
					k.RunUntil(r.curEnd)
				}
				r.wg.Done()
			}
		}()
	}
	r.warm = true
	r.wg.Add(len(r.kernels))
	for _, ch := range r.work {
		ch <- struct{}{}
	}
	r.wg.Wait()
	r.warm = false
}

// pendingMsgs counts cross-shard messages queued for the next exchange.
func (r *ParallelRunner) pendingMsgs() int {
	n := 0
	for i := range r.outbox {
		n += len(r.outbox[i].live)
	}
	return n
}

// Send schedules fn to run on shard dst's kernel at time at. During an
// epoch it may only be called from shard src's goroutine; at must be at
// least the sending shard's current time plus the lookahead, or the
// barrier delivery will panic. Delivery happens at the next epoch
// boundary, merged deterministically by (src, send order).
func (r *ParallelRunner) Send(src, dst int, at Time, fn Event) {
	if fn == nil {
		panic("sim: Send nil event")
	}
	c := &r.outbox[src*len(r.kernels)+dst]
	c.live = append(c.live, crossMsg{at: at, fn: fn})
}

// exchange drains every outbox into the destination kernels in (src,
// send order) — the deterministic merge the equivalence proof rests on.
// Each cell's live slice is swapped against its drained spare rather
// than reallocated: capacity is reused across epochs, and the slice
// being delivered is never the one the next epoch appends to. Drained
// slots are cleared so the rings don't pin delivered closures.
func (r *ParallelRunner) exchange() {
	n := len(r.kernels)
	for idx := range r.outbox {
		c := &r.outbox[idx]
		msgs := c.live
		c.live, c.spare = c.spare[:0], msgs
		if len(msgs) == 0 {
			continue
		}
		k := r.kernels[idx%n]
		for i := range msgs {
			m := &msgs[i]
			if m.at < k.Now() {
				panic(fmt.Sprintf(
					"sim: cross-shard message %d->%d at %v violates lookahead (destination clock %v)",
					idx/n, idx%n, m.at, k.Now()))
			}
			k.At(m.at, m.fn)
			*m = crossMsg{}
		}
	}
}

// epochEnd picks the next epoch's end: one lookahead cell by default,
// or — when adaptive lookahead is enabled and every injection source is
// covered by the horizon — as many whole cells as provably hold no
// work. The pending-work horizon h is the minimum over every kernel's
// next event and the injection horizon; since nothing can execute
// before h, and a cross-shard send made at time t is delivered at
// t+lookahead or later, every cell strictly before h's cell is a no-op
// in the fixed-lookahead oracle too: same events, same merge order,
// same bytes. The end always lands on the now+k*lookahead grid, which
// is what keeps widened and fixed runs on the same epoch anchors.
func (r *ParallelRunner) epochEnd(deadline Time) Time {
	end := r.now.Add(r.lookahead)
	if r.adaptMax > 1 && (r.beforeEpoch == nil || r.horizon != nil) {
		h := End
		if r.horizon != nil {
			h = r.horizon()
		}
		for _, k := range r.kernels {
			if t, ok := k.NextEvent(); ok && t < h {
				h = t
			}
		}
		if h == End {
			// No pending work anywhere: a single epoch to the deadline.
			end = deadline
		} else if h > r.now {
			cells := int64(h-r.now) / int64(r.lookahead)
			if cells >= int64(r.adaptMax) {
				cells = int64(r.adaptMax) - 1
			}
			end = r.now + Time(cells+1)*Time(r.lookahead)
		}
	}
	if end > deadline || end < r.now {
		end = deadline
	}
	return end
}

// advance runs every kernel to end — in shard order on this thread in
// sequential mode, on the persistent shard workers otherwise.
func (r *ParallelRunner) advance(end Time) {
	if r.sequential {
		if r.timed {
			for i, k := range r.kernels {
				t0 := time.Now()
				k.RunUntil(end)
				r.advanceNS[i] = time.Since(t0).Nanoseconds()
			}
			return
		}
		for _, k := range r.kernels {
			k.RunUntil(end)
		}
		return
	}
	if r.work == nil {
		r.startWorkers()
	}
	r.curEnd = end
	r.wg.Add(len(r.kernels))
	for _, ch := range r.work {
		ch <- struct{}{}
	}
	r.wg.Wait()
}

// RunUntil advances every kernel to deadline, exchanging cross-shard
// messages at each barrier. On return, every kernel's clock reads
// exactly deadline (when deadline is ahead of the runner clock) and all
// messages sent by completed epochs have been delivered.
func (r *ParallelRunner) RunUntil(deadline Time) { r.RunEpochs(deadline, nil) }

// RunEpochs advances like RunUntil but consults stop (when non-nil)
// after each completed epoch and returns once it reports true. Replay
// drivers hand the barrier a wide deadline and stop at the first
// barrier after source exhaustion, which keeps the final clock
// identical across fixed, adaptive, and cluster execution.
func (r *ParallelRunner) RunEpochs(deadline Time, stop func() bool) {
	if r.observer != nil {
		r.runEpochsObserved(deadline, stop)
		return
	}
	for r.now < deadline {
		r.exchange()
		end := r.epochEnd(deadline)
		if r.beforeEpoch != nil {
			r.beforeEpoch(r.now, end)
		}
		r.advance(end)
		r.now = end
		r.epochSeq++
		if stop != nil && stop() {
			break
		}
	}
	r.exchange()
}

// runEpochsObserved is RunEpochs with per-phase wall timing. Identical
// event execution — only timestamps are added around each phase and the
// observer is invoked at each barrier.
func (r *ParallelRunner) runEpochsObserved(deadline Time, stop func() bool) {
	r.timed = true
	defer func() { r.timed = false }()
	for r.now < deadline {
		epochT0 := time.Now()
		msgs := r.pendingMsgs()
		r.exchange()
		exchangeNS := time.Since(epochT0).Nanoseconds()
		end := r.epochEnd(deadline)
		start := r.now
		if r.beforeEpoch != nil {
			r.beforeEpoch(start, end)
		}
		r.advance(end)
		r.now = end
		r.epochSeq++
		slowest, maxAdv := 0, int64(0)
		for i, ns := range r.advanceNS {
			if ns > maxAdv {
				slowest, maxAdv = i, ns
			}
		}
		for i, ns := range r.advanceNS {
			r.waitNS[i] = maxAdv - ns
		}
		r.observer(EpochStats{
			Seq:           r.epochSeq,
			Start:         start,
			End:           end,
			WallNS:        time.Since(epochT0).Nanoseconds(),
			ExchangeNS:    exchangeNS,
			ExchangeMsgs:  msgs,
			AdvanceNS:     r.advanceNS,
			BarrierWaitNS: r.waitNS,
			SlowestShard:  slowest,
		})
		if stop != nil && stop() {
			break
		}
	}
	r.exchange()
}

// RunFor is RunUntil(Now()+d).
func (r *ParallelRunner) RunFor(d time.Duration) { r.RunUntil(r.now.Add(d)) }
