package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKernelOrdersEventsByTime(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.At(30, func(Time) { got = append(got, 3) })
	k.At(10, func(Time) { got = append(got, 1) })
	k.At(20, func(Time) { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Errorf("Now() = %v, want 30", k.Now())
	}
}

func TestKernelSameTimeFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func(Time) { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestKernelEventsCanSchedule(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	var chain Event
	chain = func(now Time) {
		fired++
		if fired < 5 {
			k.After(time.Millisecond, chain)
		}
	}
	k.After(0, chain)
	k.Run()
	if fired != 5 {
		t.Errorf("fired = %d, want 5", fired)
	}
	if want := Time(4 * time.Millisecond); k.Now() != want {
		t.Errorf("Now() = %v, want %v", k.Now(), want)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(100, func(Time) {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(50, func(Time) {})
}

func TestTimerStop(t *testing.T) {
	k := NewKernel(1)
	fired := false
	tm := k.At(10, func(Time) { fired = true })
	if !tm.Stop() {
		t.Error("first Stop() = false, want true")
	}
	if tm.Stop() {
		t.Error("second Stop() = true, want false")
	}
	k.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	k := NewKernel(1)
	tm := k.At(10, func(Time) {})
	k.Run()
	if tm.Stop() {
		t.Error("Stop() after firing = true, want false")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.At(10, func(Time) { fired++ })
	k.At(1000, func(Time) { fired++ })
	k.RunUntil(500)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if k.Now() != 500 {
		t.Errorf("Now() = %v, want 500", k.Now())
	}
	k.Run()
	if fired != 2 {
		t.Errorf("after Run, fired = %d, want 2", fired)
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel(1)
	n := 0
	var tk *Ticker
	tk = k.Every(time.Second, func(Time) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	k.RunUntil(Start.Add(time.Minute))
	if n != 3 {
		t.Errorf("ticks = %d, want 3", n)
	}
}

func TestTickerStopInsideOtherEvent(t *testing.T) {
	k := NewKernel(1)
	n := 0
	tk := k.Every(time.Second, func(Time) { n++ })
	k.At(Start.Add(2500*time.Millisecond), func(Time) { tk.Stop() })
	k.Run()
	if n != 2 {
		t.Errorf("ticks = %d, want 2", n)
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.At(1, func(Time) { fired++; k.Stop() })
	k.At(2, func(Time) { fired++ })
	k.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	k.Run() // resumes
	if fired != 2 {
		t.Errorf("after resume fired = %d, want 2", fired)
	}
}

func TestTickerStopsAtEndOfTime(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.Every(time.Hour, func(Time) { fired++ })
	// Run straight to the end of representable time: the ticker must
	// not spin forever at the saturation boundary.
	k.RunUntil(End)
	if k.Now() != End {
		t.Errorf("Now = %v", k.Now())
	}
	if fired == 0 {
		t.Error("ticker never fired")
	}
}

func TestTimeAddSaturates(t *testing.T) {
	if got := End.Add(time.Hour); got != End {
		t.Errorf("End.Add = %v, want End", got)
	}
	if got := Start.Add(time.Second); got != Time(time.Second) {
		t.Errorf("Start.Add(1s) = %v", got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		k := NewKernel(42)
		r := k.Stream("load")
		var times []Time
		var gen Event
		gen = func(now Time) {
			times = append(times, now)
			if len(times) < 100 {
				k.After(time.Duration(r.Exp(1e6)), gen)
			}
		}
		k.After(0, gen)
		k.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	k := NewKernel(7)
	a, b := k.Stream("a"), k.Stream("b")
	a2 := k.Stream("a")
	if a.Uint64() != a2.Uint64() {
		t.Error("same-name streams differ")
	}
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different-name streams collided %d/64 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(9)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(11)
	const buckets, draws = 10, 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	for i, c := range counts {
		// Expect 10000 per bucket; 5% tolerance is ~16 sigma.
		if c < 9500 || c > 10500 {
			t.Errorf("bucket %d count %d outside [9500,10500]", i, c)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	const mean, n = 250.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if got < mean*0.98 || got > mean*1.02 {
		t.Errorf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestRNGParetoMinimum(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(1.5, 2.0); v < 2.0 {
			t.Fatalf("Pareto below xmin: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(19)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < 4.97 || mean > 5.03 {
		t.Errorf("Normal mean = %v, want ~5", mean)
	}
	if variance < 3.8 || variance > 4.2 {
		t.Errorf("Normal variance = %v, want ~4", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(29)
	z := NewZipf(r, 1000, 1.0)
	var counts [1000]int
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[500] {
		t.Errorf("rank 0 (%d) not more popular than rank 500 (%d)", counts[0], counts[500])
	}
	// Rank 0 of Zipf(s=1, n=1000) has probability 1/H(1000) ≈ 0.1336.
	if counts[0] < draws/10 {
		t.Errorf("rank 0 count %d suspiciously low", counts[0])
	}
}

func TestZipfDrawInRange(t *testing.T) {
	r := NewRNG(31)
	z := NewZipf(r, 7, 0.8)
	for i := 0; i < 10000; i++ {
		if v := z.Draw(); v < 0 || v >= 7 {
			t.Fatalf("Zipf draw out of range: %d", v)
		}
	}
}

// Property: events fire in non-decreasing time order regardless of the
// scheduling order.
func TestEventOrderProperty(t *testing.T) {
	err := quick.Check(func(offsets []uint32) bool {
		k := NewKernel(5)
		var fired []Time
		for _, off := range offsets {
			k.At(Time(off), func(now Time) { fired = append(fired, now) })
		}
		k.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFiredCount(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 25; i++ {
		k.At(Time(i), func(Time) {})
	}
	k.Run()
	if k.Fired() != 25 {
		t.Errorf("Fired() = %d, want 25", k.Fired())
	}
	if k.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", k.Pending())
	}
}
