package sim

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic random stream (xoshiro256**). Each
// simulation component takes its own stream, derived by name from the
// kernel seed, so adding randomness to one component never perturbs the
// values another component sees. The zero value is not usable; use
// NewRNG or Kernel.Stream.
type RNG struct {
	s [4]uint64
}

// splitmix64 expands a seed into well-distributed state words.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a stream seeded from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	for i := range r.s {
		r.s[i] = splitmix64(&seed)
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// fnv1a hashes a stream name for sub-stream derivation.
func fnv1a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Stream derives a named substream from the kernel seed. The same
// (seed, name) pair always yields the same stream.
func (k *Kernel) Stream(name string) *RNG {
	return NewRNG(k.seed ^ fnv1a(name))
}

// Fork derives a child stream from r's current state and a name, without
// disturbing r beyond one draw.
func (r *RNG) Fork(name string) *RNG {
	return NewRNG(r.Uint64() ^ fnv1a(name))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n(0)")
	}
	// Lemire's nearly-divisionless bounded generation.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
// Used for Poisson inter-arrival gaps in the telescope generator.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto(shape alpha, scale xmin) value. Heavy-tailed
// per-address popularity and on-time distributions use this.
func (r *RNG) Pareto(alpha, xmin float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xmin / math.Pow(u, 1/alpha)
}

// Normal returns a normally distributed value (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf draws from a Zipf-like distribution over [0, n) with exponent s > 0
// via inverse-CDF on a precomputed table is avoided; instead it uses
// rejection-free approximation adequate for workload skew: it draws a
// Pareto rank and clamps. For exact Zipf sampling use NewZipf.
type Zipf struct {
	r    *RNG
	cdf  []float64
	n    int
	imax int
}

// NewZipf builds an exact Zipf sampler over ranks [0, n) with exponent s.
// Memory is O(n); the telescope uses it for per-address popularity over
// bounded active sets.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{r: r, cdf: cdf, n: n, imax: n - 1}
}

// Draw returns a rank in [0, n); rank 0 is the most popular.
func (z *Zipf) Draw() int {
	u := z.r.Float64()
	lo, hi := 0, z.imax
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
