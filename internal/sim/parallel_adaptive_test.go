package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// burstHarness schedules bursty work: each shard runs a burst of local
// events (with cross-shard sends) at each listed start time, separated
// by quiet gaps — exactly the shape adaptive lookahead exists for.
type burstHarness struct {
	r    *ParallelRunner
	logs []*strings.Builder
}

func newBurstHarness(n int, lookahead time.Duration, bursts []Time) *burstHarness {
	kernels := make([]*Kernel, n)
	logs := make([]*strings.Builder, n)
	for i := range kernels {
		kernels[i] = NewKernel(uint64(300 + i))
		logs[i] = &strings.Builder{}
	}
	h := &burstHarness{logs: logs}
	h.r = NewParallelRunner(kernels, lookahead)
	for i := range kernels {
		i := i
		k := kernels[i]
		rng := k.Stream("burst")
		for _, at := range bursts {
			for j := 0; j < 5; j++ {
				j := j
				k.At(at.Add(time.Duration(j)*100*time.Microsecond), func(now Time) {
					fmt.Fprintf(logs[i], "s%d local t=%v r=%d\n", i, now, rng.Uint64n(1000))
					if j%2 == 0 {
						dst := (i + 1) % n
						h.r.Send(i, dst, now.Add(lookahead), func(then Time) {
							fmt.Fprintf(logs[dst], "s%d recv from s%d t=%v\n", dst, i, then)
						})
					}
				})
			}
		}
	}
	return h
}

func (h *burstHarness) dump() string {
	var b strings.Builder
	for i, l := range h.logs {
		fmt.Fprintf(&b, "== shard %d ==\n%s", i, l.String())
	}
	return b.String()
}

// TestAdaptiveMatchesFixed drives the bursty workload under every
// combination of {fixed, adaptive} x {sequential, parallel} and demands
// byte-identical logs — the determinism claim of adaptive lookahead —
// while the adaptive runs must pay strictly fewer epoch barriers for
// the quiet gaps.
func TestAdaptiveMatchesFixed(t *testing.T) {
	const n = 3
	la := time.Millisecond
	bursts := []Time{0, Time(20 * time.Millisecond), Time(60 * time.Millisecond)}
	deadline := Time(80 * time.Millisecond)
	run := func(adaptive int, seq bool) (string, uint64) {
		h := newBurstHarness(n, la, bursts)
		h.r.SetAdaptive(adaptive)
		h.r.SetSequential(seq)
		h.r.RunUntil(deadline)
		h.r.Close()
		return h.dump(), h.r.Epochs()
	}
	want, fixedEpochs := run(1, true)
	if want == "" {
		t.Fatal("harness produced no events")
	}
	var adaptiveEpochs uint64
	for _, cfg := range []struct {
		adaptive int
		seq      bool
	}{{1, false}, {64, true}, {64, false}} {
		got, epochs := run(cfg.adaptive, cfg.seq)
		if got != want {
			t.Fatalf("adaptive=%d seq=%v diverges from fixed oracle\nwant:\n%s\ngot:\n%s",
				cfg.adaptive, cfg.seq, want, got)
		}
		if cfg.adaptive > 1 {
			adaptiveEpochs = epochs
		}
	}
	if adaptiveEpochs >= fixedEpochs {
		t.Fatalf("adaptive paid %d epochs, fixed %d — widening never engaged", adaptiveEpochs, fixedEpochs)
	}
}

// TestAdaptiveWidensAndSnapsBack pins the exact epoch bounds of an
// adaptive run: the window widens across a quiet gap (bounded by the
// cell cap), snaps back to single cells around a cross-shard burst, and
// jumps to the deadline once nothing is pending. The horizon here
// reports End (no external injection), which is what arms widening
// alongside the bounds-recording hook.
func TestAdaptiveWidensAndSnapsBack(t *testing.T) {
	la := time.Millisecond
	k0, k1 := NewKernel(1), NewKernel(2)
	r := NewParallelRunner([]*Kernel{k0, k1}, la)
	r.SetAdaptive(8)
	r.SetHorizon(func() Time { return End })

	crossAt := Time(0)
	k0.At(Time(500*time.Microsecond), func(now Time) {
		// Cross-shard burst out of the quiet stretch: lands at 10ms+la.
	})
	k0.At(Time(10*time.Millisecond), func(now Time) {
		r.Send(0, 1, now.Add(la), func(then Time) { crossAt = then })
	})

	var got [][2]Time
	r.SetBeforeEpoch(func(start, end Time) { got = append(got, [2]Time{start, end}) })
	deadline := Time(16 * time.Millisecond)
	r.RunUntil(deadline)

	ms := func(n int64) Time { return Time(n) * Time(time.Millisecond) }
	want := [][2]Time{
		{0, ms(1)},         // burst cell: event at 0.5ms
		{ms(1), ms(9)},     // widened, capped at 8 cells (next event 10ms)
		{ms(9), ms(11)},    // snaps to the cell holding the 10ms event
		{ms(11), ms(12)},   // cross message delivered at 11ms pins this cell
		{ms(12), deadline}, // drained: one epoch to the deadline
	}
	if len(got) != len(want) {
		t.Fatalf("epoch bounds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("epoch %d = %v, want %v", i, got[i], want[i])
		}
	}
	if crossAt != ms(11) {
		t.Fatalf("cross message fired at %v, want 11ms", crossAt)
	}
}

// TestAdaptiveStaysFixedWithoutHorizon: a pre-epoch hook with no
// installed horizon must disable widening — the runner cannot prove the
// hook would not inject into a skipped cell.
func TestAdaptiveStaysFixedWithoutHorizon(t *testing.T) {
	r := NewParallelRunner([]*Kernel{NewKernel(1), NewKernel(2)}, time.Millisecond)
	r.SetAdaptive(64)
	var bounds [][2]Time
	r.SetBeforeEpoch(func(start, end Time) { bounds = append(bounds, [2]Time{start, end}) })
	r.RunUntil(Time(5 * time.Millisecond))
	if len(bounds) != 5 {
		t.Fatalf("expected 5 fixed epochs, got %d: %v", len(bounds), bounds)
	}
}

// TestRunEpochsStops: the stop predicate ends the run at the first
// barrier after it turns true, leaving the clock on that barrier.
func TestRunEpochsStops(t *testing.T) {
	r := NewParallelRunner([]*Kernel{NewKernel(1), NewKernel(2)}, time.Millisecond)
	epochs := 0
	r.RunEpochs(Time(100*time.Millisecond), func() bool {
		epochs++
		return epochs >= 3
	})
	if r.Now() != Time(3*time.Millisecond) {
		t.Fatalf("clock = %v, want 3ms (stopped after 3 epochs)", r.Now())
	}
}

// TestExchangeRingNoAliasing is the barrier-swap property test: a
// message slice handed to the destination kernels must never alias the
// slice the next epoch appends into. Every message carries a sequence
// number unique within its source's stream, captured at Send time; if
// a ring were recycled while still live, a later epoch's append would
// overwrite an undelivered message and some sequence number would
// arrive twice or never. Runs in parallel mode so -race also checks
// the ring ownership handoff between shard goroutines and the barrier.
func TestExchangeRingNoAliasing(t *testing.T) {
	const n = 4
	la := time.Millisecond
	kernels := make([]*Kernel, n)
	for i := range kernels {
		kernels[i] = NewKernel(uint64(i + 1))
	}
	r := NewParallelRunner(kernels, la)
	defer r.Close()

	// Per-destination delivery channels: the delivering shard goroutine
	// pushes, the driver drains after the run. Per-source counters are
	// written only by their shard's goroutine (epoch isolation) and read
	// by the driver after the final barrier.
	recvCh := make([]chan int, n)
	for i := range recvCh {
		recvCh[i] = make(chan int, 1<<16)
	}
	sent := make([]int, n)
	for i := range kernels {
		i, k := i, kernels[i]
		tick := 0
		var step Event
		step = func(now Time) {
			tick++
			for dst := 0; dst < n; dst++ {
				if dst == i {
					continue
				}
				// Varying fan-out so ring lengths grow and shrink —
				// stale-capacity bugs hide in the steady state.
				for m := 0; m < (tick+dst)%3; m++ {
					seq := i<<24 | sent[i]
					sent[i]++
					dst := dst
					r.Send(i, dst, now.Add(la), func(Time) {
						recvCh[dst] <- seq
					})
				}
			}
			k.After(500*time.Microsecond, step)
		}
		k.At(0, step)
	}
	r.RunUntil(Time(30 * time.Millisecond))

	seen := make(map[int]bool)
	total := 0
	for i := 0; i < n; i++ {
	drain:
		for {
			select {
			case v := <-recvCh[i]:
				if seen[v] {
					t.Fatalf("dst %d received seq %x twice — ring aliased a live slice", i, v)
				}
				seen[v] = true
				total++
			default:
				break drain
			}
		}
	}
	// The final epoch's sends are scheduled past the deadline and never
	// fire, so delivered < sent by at most one epoch's worth.
	totalSent := 0
	for _, s := range sent {
		totalSent += s
	}
	if total == 0 || totalSent == 0 {
		t.Fatal("workload sent no cross-shard messages")
	}
	if total > totalSent {
		t.Fatalf("delivered %d messages but only %d were sent", total, totalSent)
	}
	if totalSent-total > 3*n*n {
		t.Fatalf("sent %d, delivered %d — more than a tail epoch of loss", totalSent, total)
	}
}

// TestExchangeRingSurvivesMutateAfterExchange: messages appended after
// a barrier must not disturb messages the barrier already handed to
// destination kernels but which have not yet fired (delivery time later
// in the next epoch). This is the mutate-after-exchange scenario from
// the ring ownership rules.
func TestExchangeRingSurvivesMutateAfterExchange(t *testing.T) {
	la := time.Millisecond
	kernels := []*Kernel{NewKernel(1), NewKernel(2)}
	r := NewParallelRunner(kernels, la)

	var fired []string
	// Epoch [0,1ms): shard 0 sends three messages due next epoch.
	for i := 0; i < 3; i++ {
		i := i
		r.Send(0, 1, Time(time.Millisecond).Add(time.Duration(i)*100*time.Microsecond),
			func(Time) { fired = append(fired, fmt.Sprintf("old%d", i)) })
	}
	// Shard 0's first epoch refills the same (0,1) ring — the appends
	// land in the swapped-in spare, not the slice being executed.
	kernels[0].At(Time(100*time.Microsecond), func(now Time) {
		for i := 0; i < 3; i++ {
			i := i
			r.Send(0, 1, now.Add(la), func(Time) { fired = append(fired, fmt.Sprintf("new%d", i)) })
		}
	})
	r.SetSequential(true)
	r.RunUntil(Time(3 * time.Millisecond))
	// Expected order is pure event-time merge: old0 fires at 1ms; the
	// refill lands all three new messages at 1.1ms, alongside old1
	// (same time, earlier insertion) and ahead of old2 at 1.2ms. Any
	// ring aliasing would have overwritten the undelivered old
	// messages with new ones instead of interleaving them.
	want := []string{"old0", "old1", "new0", "new1", "new2", "old2"}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

// sendTrampoline is a prebound no-op event so the alloc measurement
// below counts the exchange machinery, not test-closure construction.
func sendTrampoline(Time) {}

// TestEpochExchangeAllocs is the allocation-regression gate on the hot
// path: once the rings and kernel freelists are warm, an epoch cycle —
// two cross-shard sends, the barrier swap, delivery into kernels, and
// the kernel advancing through the delivered events — must allocate
// nothing.
func TestEpochExchangeAllocs(t *testing.T) {
	la := time.Millisecond
	kernels := []*Kernel{NewKernel(1), NewKernel(2)}
	r := NewParallelRunner(kernels, la)
	r.SetSequential(true) // measure the exchange, not goroutine scheduling

	now := Time(0)
	cycle := func() {
		r.Send(0, 1, now.Add(la), sendTrampoline)
		r.Send(1, 0, now.Add(la), sendTrampoline)
		now = now.Add(la)
		r.RunUntil(now)
	}
	for i := 0; i < 8; i++ {
		cycle() // warm rings and item freelists to steady state
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("epoch exchange allocates %.1f objects per cycle, want 0", avg)
	}
}

// TestRunnerCloseIdempotent: Close twice, and a sequential advance
// after Close still works (only the parallel workers are torn down).
func TestRunnerCloseIdempotent(t *testing.T) {
	r := NewParallelRunner([]*Kernel{NewKernel(1), NewKernel(2)}, time.Millisecond)
	r.RunFor(2 * time.Millisecond) // spin the workers up
	r.Close()
	r.Close()
	r.SetSequential(true)
	r.RunFor(time.Millisecond)
	if r.Now() != Time(3*time.Millisecond) {
		t.Fatalf("clock = %v, want 3ms", r.Now())
	}
}
