// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, a binary-heap event queue, cancellable timers, and
// seedable random-number streams.
//
// All Potemkin substrates that model time (the VMM, simulated links, the
// telescope feed, the worm epidemic) run on top of one Kernel. Determinism
// is a hard requirement: two runs with the same seed and the same sequence
// of Schedule calls produce identical event orders, which the test suite
// relies on.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. It is deliberately distinct from time.Time: simulated
// experiments must never consult the wall clock.
type Time int64

// Common reference points.
const (
	// Start is the beginning of virtual time.
	Start Time = 0
	// End is the largest representable virtual time.
	End Time = math.MaxInt64
)

// Add returns t advanced by d. It saturates at End instead of overflowing.
func (t Time) Add(d time.Duration) Time {
	s := t + Time(d)
	if d > 0 && s < t {
		return End
	}
	return s
}

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns the time as floating-point seconds since Start.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the time as a duration since Start, e.g. "1m3.5s".
func (t Time) String() string {
	if t == End {
		return "end-of-time"
	}
	return time.Duration(t).String()
}

// Event is a scheduled callback. Callbacks run with the kernel clock set to
// their firing time and may schedule further events.
type Event func(now Time)

// item is a pending entry in the event heap. seq breaks ties so that events
// scheduled for the same instant fire in scheduling order, which keeps runs
// deterministic.
type item struct {
	at     Time
	seq    uint64
	fn     Event
	cancel bool
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*item)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Kernel is a discrete-event scheduler. The zero value is not usable; call
// NewKernel. Kernel is not safe for concurrent use: simulations are
// single-threaded by design so they stay deterministic.
type Kernel struct {
	now     Time
	queue   eventHeap
	seq     uint64
	fired   uint64
	stopped bool
	seed    uint64
	// free recycles fired/cancelled heap items so steady-state
	// scheduling allocates nothing. Recycled items get a fresh seq, and
	// Timer carries the seq it was issued with, so a stale Timer can
	// never cancel the item's next occupant.
	free []*item
}

// NewKernel returns a kernel whose clock reads Start and whose random
// streams derive from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{seed: seed}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() uint64 { return k.seed }

// Pending returns the number of events waiting in the queue, including
// cancelled ones that have not yet been popped.
func (k *Kernel) Pending() int { return len(k.queue) }

// Fired returns the total number of events that have executed.
func (k *Kernel) Fired() uint64 { return k.fired }

// Timer identifies a scheduled event and allows cancelling it. It
// remembers the scheduling sequence number it was issued with: once the
// event has fired (or been cancelled) its heap item may be recycled for
// a later event, and the stale Timer then no-ops instead of cancelling
// the item's new occupant.
type Timer struct {
	it  *item
	seq uint64
}

// Stop cancels the timer. It is safe to call on an already-fired or
// already-stopped timer; it reports whether the event was still pending.
func (t Timer) Stop() bool {
	if t.it == nil || t.it.seq != t.seq || t.it.cancel || t.it.fn == nil {
		return false
	}
	t.it.cancel = true
	return true
}

// At schedules fn to run at the absolute time at. Scheduling in the past is
// a programming error and panics: silently reordering time would corrupt
// every experiment built on the kernel.
func (k *Kernel) At(at Time, fn Event) Timer {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	if fn == nil {
		panic("sim: schedule nil event")
	}
	var it *item
	if n := len(k.free); n > 0 {
		it = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		it.at, it.seq, it.fn, it.cancel = at, k.seq, fn, false
	} else {
		it = &item{at: at, seq: k.seq, fn: fn}
	}
	k.seq++
	heap.Push(&k.queue, it)
	return Timer{it: it, seq: it.seq}
}

// recycle returns a popped heap item to the freelist. The fn reference
// is dropped so the freelist never keeps closures (and their captures)
// alive.
func (k *Kernel) recycle(it *item) {
	it.fn = nil
	it.cancel = false
	k.free = append(k.free, it)
}

// After schedules fn to run d from now. Negative d means "immediately"
// (still queued, fired in scheduling order).
func (k *Kernel) After(d time.Duration, fn Event) Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Every schedules fn to run now+d, then every d after that, until the
// returned Ticker is stopped. d must be positive.
func (k *Kernel) Every(d time.Duration, fn Event) *Ticker {
	if d <= 0 {
		panic("sim: Every with non-positive period")
	}
	t := &Ticker{k: k, period: d, fn: fn}
	t.arm()
	return t
}

// Ticker re-arms an event periodically. Stop prevents future firings.
type Ticker struct {
	k       *Kernel
	period  time.Duration
	fn      Event
	timer   Timer
	stopped bool
}

func (t *Ticker) arm() {
	// At the saturation boundary (virtual time pinned at End) a
	// re-armed ticker would fire at the same instant forever; stop
	// instead of spinning.
	if t.k.Now().Add(t.period) <= t.k.Now() {
		t.stopped = true
		return
	}
	t.timer = t.k.After(t.period, func(now Time) {
		if t.stopped {
			return
		}
		t.fn(now)
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels the ticker. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

// Stop halts Run/RunUntil after the current event returns. Events already
// queued remain queued and would run if Run were called again.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single earliest pending event, advancing the clock to
// its firing time. It reports whether an event ran (false if the queue was
// empty).
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		it := heap.Pop(&k.queue).(*item)
		if it.cancel {
			k.recycle(it)
			continue
		}
		k.now = it.at
		fn := it.fn
		// Recycle before running: the item's seq only changes when At
		// reuses it, so a Timer held for this event still reports
		// "already fired" either way.
		k.recycle(it)
		k.fired++
		fn(k.now)
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with firing time <= deadline, then sets the
// clock to deadline (if it is later than the last event). Events after the
// deadline stay queued.
func (k *Kernel) RunUntil(deadline Time) {
	k.stopped = false
	for !k.stopped {
		next, ok := k.peek()
		if !ok || next > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// RunFor is RunUntil(Now()+d).
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now.Add(d)) }

// peek returns the firing time of the earliest live event.
func (k *Kernel) peek() (Time, bool) {
	for len(k.queue) > 0 {
		if k.queue[0].cancel {
			k.recycle(heap.Pop(&k.queue).(*item))
			continue
		}
		return k.queue[0].at, true
	}
	return 0, false
}

// NextEvent reports the firing time of the earliest pending event, or
// false when the queue is empty. The parallel runner's adaptive
// lookahead consults it between epochs to bound how far the window may
// widen; like every Kernel method it is single-threaded.
func (k *Kernel) NextEvent() (Time, bool) { return k.peek() }
