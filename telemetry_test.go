package potemkin

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"potemkin/internal/ingest"
	"potemkin/internal/metrics"
	"potemkin/internal/netsim"
	"potemkin/internal/sim"
)

// TestMetricsOffByDefault: without Options.Metrics the farm carries no
// registry and the nil-safe instrument handles make every record a
// no-op — the telemetry-off path.
func TestMetricsOffByDefault(t *testing.T) {
	hf := MustNew(Options{})
	defer hf.Close()
	if hf.Metrics() != nil {
		t.Error("registry present without Options.Metrics")
	}
	if b := hf.MetricsText(); b != nil {
		t.Errorf("MetricsText = %q, want nil", b)
	}
	hf.InjectProbe("203.0.113.9", "10.5.1.2", 445)
	hf.RunFor(time.Second) // must not panic through nil instruments
}

// TestMetricsThroughFacade: with telemetry on, the registry's live
// counters agree with the end-of-run Stats, and the Prometheus text
// exposition carries the key series.
func TestMetricsThroughFacade(t *testing.T) {
	hf := MustNew(Options{Metrics: true, Seed: 3, IdleTimeout: 2 * time.Second})
	defer hf.Close()
	recs, err := hf.GenerateTrace(10*time.Second, 100)
	if err != nil {
		t.Fatal(err)
	}
	hf.ReplayTrace(recs)
	hf.RunFor(30 * time.Second)

	st := hf.Stats()
	pts := hf.Metrics().Snapshot()
	get := func(name string) int64 {
		for _, p := range pts {
			if p.Name == name {
				return p.Value
			}
		}
		t.Errorf("series %q missing from snapshot", name)
		return -1
	}
	if got := get("gateway_inbound_packets_total"); uint64(got) != st.InboundPackets {
		t.Errorf("gateway_inbound_packets_total = %d, Stats = %d", got, st.InboundPackets)
	}
	if got := get("gateway_bindings_created_total"); uint64(got) != st.BindingsCreated {
		t.Errorf("gateway_bindings_created_total = %d, Stats = %d", got, st.BindingsCreated)
	}
	if got := get("gateway_delivered_to_vm_total"); uint64(got) != st.DeliveredToVM {
		t.Errorf("gateway_delivered_to_vm_total = %d, Stats = %d", got, st.DeliveredToVM)
	}
	if got := get("farm_live_vms"); int(got) != st.LiveVMs {
		t.Errorf("farm_live_vms = %d, Stats = %d", got, st.LiveVMs)
	}
	if got := get("vmm_clones_total"); got == 0 {
		t.Error("vmm_clones_total = 0 after a replay that spawned VMs")
	}

	text := string(hf.MetricsText())
	for _, want := range []string{
		"# TYPE gateway_inbound_packets_total counter",
		"# TYPE farm_live_vms gauge",
		"# TYPE vmm_clone_ms summary",
		"vmm_clone_ms_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// filterSimMetrics drops the wall-clock epoch_* profiler series, the
// one explicitly nondeterministic family, leaving only points that are
// a pure function of the simulated run.
func filterSimMetrics(pts []metrics.Point) []metrics.Point {
	out := pts[:0:0]
	for _, p := range pts {
		if strings.HasPrefix(p.Name, "epoch") {
			continue
		}
		out = append(out, p)
	}
	return out
}

// TestMetricsDeterminism is the property test for the registry's
// determinism contract: two same-seed runs — and a parallel run versus
// its single-threaded oracle — expose identical snapshots (modulo the
// wall-clock epoch profiler), because every instrument is an
// order-independent integer accumulation.
func TestMetricsDeterminism(t *testing.T) {
	run := func(parallel, oracle bool) []byte {
		opts := Options{Seed: 9, Metrics: true, IdleTimeout: time.Second}
		if parallel {
			opts.Parallel = true
			opts.GatewayShards = 4
		}
		hf := MustNew(opts)
		defer hf.Close()
		if oracle {
			hf.Internals().Engine.SetSequential(true)
		}
		recs, err := hf.GenerateTrace(2*time.Second, 200)
		if err != nil {
			t.Fatal(err)
		}
		hf.ReplayTrace(recs)
		hf.RunFor(2 * time.Second)
		b, err := json.Marshal(filterSimMetrics(hf.Metrics().Snapshot()))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seqA, seqB := run(false, false), run(false, false)
	if !bytes.Equal(seqA, seqB) {
		t.Errorf("same-seed sequential snapshots diverge:\n%s\n%s", seqA, seqB)
	}
	parO, parP := run(true, true), run(true, false)
	if !bytes.Equal(parO, parP) {
		t.Errorf("parallel snapshot diverges from oracle:\n%s\n%s", parO, parP)
	}
	if len(parP) <= 2 {
		t.Error("vacuous parallel snapshot")
	}
}

// chromeRun drives the same parallel workload with a Chrome trace
// attached and returns the trace bytes. With oracle set the engine
// runs its epochs single-threaded — the byte-identity baseline.
func chromeRun(t *testing.T, oracle bool) []byte {
	t.Helper()
	var chrome bytes.Buffer
	hf := MustNew(Options{
		Seed:          11,
		Parallel:      true,
		GatewayShards: 4,
		Policy:        InternalReflect,
		Guest:         GuestMultiStage,
		IdleTimeout:   time.Second,
		TraceChrome:   &chrome,
	})
	if oracle {
		hf.Internals().Engine.SetSequential(true)
	}
	if err := hf.InjectExploit("198.51.100.10", "10.5.7.20"); err != nil {
		t.Fatal(err)
	}
	recs, err := hf.GenerateTrace(500*time.Millisecond, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hf.Replay(SliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	hf.RunFor(1500 * time.Millisecond)
	hf.Close() // Chrome buffers flush in shard order at Close
	return chrome.Bytes()
}

// TestTraceChromeParallelMatchesSequential: Chrome trace output under
// the parallel engine is buffered per shard and flushed in shard
// order, so a same-seed parallel run emits byte-identical trace JSON
// to the single-threaded oracle.
func TestTraceChromeParallelMatchesSequential(t *testing.T) {
	seq := chromeRun(t, true)
	par := chromeRun(t, false)
	if len(par) == 0 {
		t.Fatal("parallel run produced no Chrome trace")
	}
	if !bytes.Equal(seq, par) {
		t.Errorf("Chrome traces diverge (seq %d bytes, par %d bytes)", len(seq), len(par))
	}
	var events []map[string]any
	if err := json.Unmarshal(par, &events); err != nil {
		t.Fatalf("Chrome trace not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("Chrome trace has no events")
	}
}

// TestEpochLogProfile: a 4-shard parallel run with the epoch timeline
// attached yields parseable per-epoch samples with 4-wide per-shard
// arrays, and the registry's barrier-wait histogram is populated.
func TestEpochLogProfile(t *testing.T) {
	var timeline bytes.Buffer
	hf := MustNew(Options{
		Seed:          5,
		Parallel:      true,
		GatewayShards: 4,
		Metrics:       true,
		EpochLog:      &timeline,
		IdleTimeout:   time.Second,
	})
	recs, err := hf.GenerateTrace(time.Second, 150)
	if err != nil {
		t.Fatal(err)
	}
	hf.ReplayTrace(recs)
	hf.RunFor(time.Second)
	pts := hf.Metrics().Snapshot()
	hf.Close() // flushes the buffered timeline

	samples, err := metrics.ReadEpochs(&timeline)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("empty epoch timeline")
	}
	for _, s := range samples[:1] {
		if len(s.AdvanceNS) != 4 || len(s.BarrierWaitNS) != 4 {
			t.Errorf("per-shard arrays not 4-wide: %+v", s)
		}
		if s.SlowestShard < 0 || s.SlowestShard > 3 {
			t.Errorf("slowest shard out of range: %+v", s)
		}
	}
	var wait, epochs metrics.Point
	for _, p := range pts {
		switch p.Name {
		case "epoch_barrier_wait_ms":
			wait = p
		case "epochs_total":
			epochs = p
		}
	}
	if wait.Count == 0 {
		t.Error("epoch_barrier_wait_ms histogram empty")
	}
	if epochs.Value != int64(len(samples)) {
		t.Errorf("epochs_total = %d, timeline has %d", epochs.Value, len(samples))
	}
	if wait.Count != uint64(4*len(samples)) {
		t.Errorf("barrier-wait observations = %d, want %d", wait.Count, 4*len(samples))
	}
}

// TestSnapshotIngestSummary: after a wire replay through the
// GRE-over-UDP listener, the facade snapshot carries the listener's
// loss accounting — received/dropped/seq-gap counters and the bridge's
// delivery totals.
func TestSnapshotIngestSummary(t *testing.T) {
	l, err := ingest.Listen(ingest.Config{Addr: "127.0.0.1:0", Timestamped: true})
	if err != nil {
		t.Fatal(err)
	}
	hf := MustNew(Options{Seed: 1})
	defer hf.Close()
	bridge := hf.WireBridge(1)
	pumped := make(chan sim.Time)
	go func() { pumped <- bridge.Pump(l, time.Millisecond) }()

	s, err := ingest.DialWire(l.Addr().String(), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const sent = 5
	src := netsim.MustParseAddr("203.0.113.9")
	dst := netsim.MustParseAddr("10.5.1.2")
	for i := 0; i < sent; i++ {
		at := sim.Time(i+1) * sim.Time(time.Millisecond)
		pkt := netsim.TCPSyn(src, dst, 40000, 445, uint32(i+1))
		if err := s.SendPacket(at, pkt); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for l.Stats().Received < sent {
		if time.Now().After(deadline) {
			t.Fatalf("listener received %d of %d", l.Stats().Received, sent)
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
	select {
	case <-pumped:
	case <-time.After(10 * time.Second):
		t.Fatal("bridge pump did not finish")
	}

	snap := hf.Snapshot()
	if snap.Ingest == nil {
		t.Fatal("snapshot has no ingest summary after a wire run")
	}
	ig := snap.Ingest
	if ig.Received != sent || ig.Delivered != sent {
		t.Errorf("ingest summary: %+v, want received=delivered=%d", ig, sent)
	}
	if ig.Dropped != 0 || ig.SeqGaps != 0 || ig.FrameErrors != 0 {
		t.Errorf("lossless loopback recorded loss: %+v", ig)
	}
	b, err := hf.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"ingest"`) || !strings.Contains(string(b), `"seq_gaps"`) {
		t.Errorf("marshaled snapshot missing ingest block:\n%s", b)
	}
}
